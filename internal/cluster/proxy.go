package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sigkern/internal/obs"
	"sigkern/internal/resilience"
	"sigkern/internal/svc"
)

// DefaultHedgeDelay is how long a read waits on one shard before a
// hedge fires at the next: long enough that the common fast path never
// hedges, short enough to cut a stuck shard out of the tail.
const DefaultHedgeDelay = 30 * time.Millisecond

// maxUpstreamBody bounds buffered upstream responses (the table and
// roofline grids are the largest legitimate bodies).
const maxUpstreamBody = 32 << 20

// Options configures a Gateway.
type Options struct {
	// Shards is the static membership (ParseShards / ResolveAddrFiles).
	Shards []Shard
	// Replicas is the virtual-node count per shard (<= 0 means
	// DefaultReplicas).
	Replicas int
	// ProbeInterval is the health-sweep period (<= 0 means
	// DefaultProbeInterval).
	ProbeInterval time.Duration
	// HedgeDelay is how long an idempotent read waits before hedging to
	// the next shard (<= 0 means DefaultHedgeDelay).
	HedgeDelay time.Duration
	// MaxHedges bounds hedges in flight across all requests (<= 0 means
	// 32): hedging is a tail-latency tool, not a load doubler.
	MaxHedges int
	// JournalDirs maps shard name -> journal directory, enabling the
	// rebalance path for shards whose WAL the gateway can reach.
	JournalDirs map[string]string
	// Breaker configures the per-shard circuit breakers (zero value =
	// resilience defaults).
	Breaker resilience.BreakerConfig
	// Client does proxied requests; nil gets a 2-minute-timeout client
	// (simulations are seconds-long under ?wait=1).
	Client *http.Client
	// ProbeClient does health probes; nil gets a 2-second-timeout
	// client so a hung shard reads as dead, not slow.
	ProbeClient *http.Client
	// Logger receives structured request logs; nil disables them.
	Logger *slog.Logger
}

// Gateway consistent-hashes jobs across simserved shards and survives
// their failures: rerouting to ring successors, breaking circuits on
// repeat offenders, hedging idempotent reads, and rebalancing a dead
// shard's WAL into its successors.
type Gateway struct {
	ring       *Ring
	shards     map[string]Shard
	prober     *Prober
	breakers   *resilience.BreakerSet
	client     *http.Client
	metrics    *Metrics
	hedgeDelay time.Duration
	hedgeSem   chan struct{}
	journals   map[string]string
	logger     *slog.Logger
}

// NewGateway builds a gateway over the shard set. Call Start to begin
// probing and Close to stop.
func NewGateway(opts Options) (*Gateway, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("cluster: gateway needs at least one shard")
	}
	names := make([]string, 0, len(opts.Shards))
	byName := make(map[string]Shard, len(opts.Shards))
	for _, s := range opts.Shards {
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard %q", s.Name)
		}
		byName[s.Name] = s
		names = append(names, s.Name)
	}
	ring, err := NewRing(names, opts.Replicas)
	if err != nil {
		return nil, err
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	if opts.HedgeDelay <= 0 {
		opts.HedgeDelay = DefaultHedgeDelay
	}
	if opts.MaxHedges <= 0 {
		opts.MaxHedges = 32
	}
	m := NewMetrics()
	g := &Gateway{
		ring:       ring,
		shards:     byName,
		prober:     NewProber(opts.Shards, opts.ProbeInterval, opts.ProbeClient, m),
		breakers:   resilience.NewBreakerSet(opts.Breaker),
		client:     opts.Client,
		metrics:    m,
		hedgeDelay: opts.HedgeDelay,
		hedgeSem:   make(chan struct{}, opts.MaxHedges),
		journals:   opts.JournalDirs,
		logger:     opts.Logger,
	}
	return g, nil
}

// Start begins active health probing (one synchronous sweep first).
func (g *Gateway) Start() { g.prober.Start() }

// Close stops the probe loop.
func (g *Gateway) Close() { g.prober.Stop() }

// Metrics returns the gateway's metric registry.
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Prober returns the health prober (tests and the rebalance guard).
func (g *Gateway) Prober() *Prober { return g.prober }

// Handler returns the gateway's HTTP API — the shard API plus cluster
// control:
//
//	POST /v1/jobs            route by canonical spec hash; reroute to ring
//	                         successors on shard failure, forwarding the
//	                         Idempotency-Key (defaulted to the spec hash)
//	                         so replays dedup
//	POST /v1/batch           split a batch (NDJSON or grid form) across
//	                         the ring by spec hash: one sub-batch per
//	                         owning shard, streams merged back line by
//	                         line in completion order with client
//	                         indices preserved; a failed sub-batch
//	                         reroutes its unanswered cells to ring
//	                         successors, and cells no shard could run
//	                         come back as failed lines, never dropped
//	POST /v1/dse             split a design-space exploration across the
//	                         ring: the request is expanded at the gateway,
//	                         each design point routed by its canonical
//	                         spec hash, and shard streams merged back with
//	                         one gateway-computed Pareto frontier in the
//	                         final summary line
//	GET  /v1/jobs/{id}       routed by the ID's shard prefix and hash
//	GET  /v1/jobs/{id}/trace suffix; hedged across successors
//	GET  /v1/jobs            forwarded to the first ready shard
//	GET  /v1/tables/3        forwarded to the first ready shard
//	GET  /v1/roofline        forwarded to the first ready shard
//	POST /v1/rebalance       ?shard=NAME: replay a dead shard's WAL into
//	                         its ring successors (409 unless it is down,
//	                         ?force=1 overrides)
//	GET  /metrics            gateway metrics (text, ?format=prometheus|json)
//	GET  /healthz            gateway + per-shard probe state (503 when no
//	GET  /readyz             shard is ready)
//
// Write paths (/v1/jobs, /v1/batch, /v1/dse) additionally refuse with
// 503 — counting simgate_config_mismatch_total — while ready shards
// report different hardware config-set hashes: a split-config cluster
// would answer the same spec with different cycle counts depending on
// routing.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	mux.HandleFunc("POST /v1/batch", g.handleBatch)
	mux.HandleFunc("POST /v1/dse", g.handleDSE)
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		g.handleJobGet(w, r, "")
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		g.handleJobGet(w, r, "/trace")
	})
	mux.HandleFunc("GET /v1/jobs", g.forwardAnyReady)
	mux.HandleFunc("GET /v1/tables/3", g.forwardAnyReady)
	mux.HandleFunc("GET /v1/roofline", g.forwardAnyReady)
	mux.HandleFunc("POST /v1/rebalance", g.handleRebalance)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /readyz", g.handleHealth)
	return obs.Instrument(g.logger, mux)
}

// routeOrder returns the shards to try for a key, owner first: ready
// shards in ring-successor order, then alive-but-not-ready ones (a
// draining shard still answers reads and dedups submits), then — last
// resort, so a fully-failed probe sweep cannot black-hole traffic —
// everything else.
func (g *Gateway) routeOrder(key string) []string {
	succ := g.ring.Successors(key)
	order := make([]string, 0, len(succ))
	for _, name := range succ {
		if g.prober.Ready(name) {
			order = append(order, name)
		}
	}
	for _, name := range succ {
		if !g.prober.Ready(name) && g.prober.Alive(name) {
			order = append(order, name)
		}
	}
	for _, name := range succ {
		if !g.prober.Ready(name) && !g.prober.Alive(name) {
			order = append(order, name)
		}
	}
	return order
}

// bufferedResponse is one upstream answer, fully read so it can be
// compared against other attempts before anything is written back.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

// do proxies one request to one shard and buffers the answer.
func (g *Gateway) do(ctx context.Context, shard, method, pathAndQuery string, body []byte, hdr http.Header) (*bufferedResponse, error) {
	s, ok := g.shards[shard]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown shard %q", shard)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, s.URL+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	for _, k := range []string{"Content-Type", "Idempotency-Key", "X-Request-Id", "X-Deadline-Budget", "Accept"} {
		if v := hdr.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody))
	if err != nil {
		return nil, err
	}
	return &bufferedResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: data}, nil
}

// writeBuffered relays one upstream answer to the client. Shard-set
// response headers (Content-Type, Retry-After, Idempotency-Replayed,
// X-Request-Id, ...) pass through; when overrideRetryAfter > 0 it
// replaces whatever the upstream sent — the largest value seen across
// attempts, never a synthesized zero.
func writeBuffered(w http.ResponseWriter, br *bufferedResponse, shard string, overrideRetryAfter int) {
	for k, vals := range br.header {
		switch k {
		case "Connection", "Transfer-Encoding", "Content-Length":
			continue
		}
		for _, v := range vals {
			w.Header().Add(k, v)
		}
	}
	if overrideRetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(overrideRetryAfter))
	}
	w.Header().Set("X-Simgate-Shard", shard)
	w.WriteHeader(br.status)
	_, _ = w.Write(br.body)
}

// retryAfterSeconds parses a Retry-After header as integral seconds
// (the only form the shards emit); 0 means absent or unparseable.
func retryAfterSeconds(h http.Header) int {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func writeGatewayError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// submitBudget extracts the request's deadline budget: the client's
// X-Deadline-Budget header, or — the common case — the ?timeout= the
// client is already waiting with. Zero means unbounded (the pre-budget
// behavior).
func submitBudget(r *http.Request) (time.Duration, error) {
	v := r.Header.Get("X-Deadline-Budget")
	if v == "" {
		v = r.URL.Query().Get("timeout")
	}
	return resilience.ParseTimeout(v, 0)
}

// handleSubmit routes a job submission by its canonical spec hash and
// reroutes along the hash ring when the owner fails. The
// Idempotency-Key — the client's, or the spec hash when the client
// sent none — is forwarded on every attempt, so a shard that already
// journaled the job from an earlier (timed-out but delivered) attempt
// answers with the original instead of duplicate work: every rerouted
// job is answered exactly once.
//
// The deadline budget (X-Deadline-Budget, defaulted from ?timeout=)
// is spent down across attempts: each shard gets an even slice of
// what remains — its per-attempt context and the decremented budget
// header it sees — and when the budget runs out mid-route the gateway
// answers 504 instead of burning more attempts on a client that has
// already given up.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !g.guardConfigConsensus(w) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeGatewayError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var spec svc.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeGatewayError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		// Invalid specs are refused here — no shard would accept them,
		// so rerouting through the ring would just triple the error.
		writeGatewayError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash, err := norm.Hash()
	if err != nil {
		writeGatewayError(w, http.StatusBadRequest, err.Error())
		return
	}
	hdr := r.Header.Clone()
	if hdr.Get("Idempotency-Key") == "" {
		hdr.Set("Idempotency-Key", hash)
	}
	budget, err := submitBudget(r)
	if err != nil {
		writeGatewayError(w, http.StatusBadRequest, err.Error())
		return
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}

	g.metrics.proxiedInc()
	order := g.routeOrder(hash)
	owner := g.ring.Owner(hash)
	path := "/v1/jobs"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	maxRetryAfter := 0
	budgetSpent := false
	var last *bufferedResponse
	lastShard := ""
	for i, name := range order {
		br := g.breakers.Get(name)
		if err := br.Allow(); err != nil {
			g.metrics.breakerRejectedInc()
			if ra := int(br.RetryAfter().Seconds()) + 1; ra > maxRetryAfter {
				maxRetryAfter = ra
			}
			continue
		}
		// Each attempt gets an even slice of the remaining budget — its
		// own context deadline, and the decremented X-Deadline-Budget the
		// shard sees — so a slow first shard cannot eat the whole budget
		// and leave the reroute a guaranteed failure.
		attemptCtx := r.Context()
		cancel := func() {}
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				budgetSpent = true
				break
			}
			slice := remaining
			if left := len(order) - i; left > 1 {
				slice = remaining / time.Duration(left)
			}
			hdr.Set("X-Deadline-Budget", slice.String())
			attemptCtx, cancel = context.WithTimeout(r.Context(), slice)
		}
		resp, err := g.do(attemptCtx, name, http.MethodPost, path, body, hdr)
		cancel()
		if err != nil {
			g.metrics.upstreamErrorInc()
			br.Record(false)
			g.prober.ObserveFailure(name, err)
			continue
		}
		if ra := retryAfterSeconds(resp.header); ra > maxRetryAfter {
			maxRetryAfter = ra
		}
		if resp.status >= 500 {
			// Including 503: an open upstream breaker or failing journal
			// means this shard cannot take the job now — a successor can,
			// and the forwarded Idempotency-Key dedups if the shard in
			// fact accepted before failing.
			br.Record(false)
			last, lastShard = resp, name
			continue
		}
		br.Record(true)
		if name != owner {
			g.metrics.rerouteInc()
		}
		// 429 passes through with the shard's own Retry-After: queue
		// saturation is backpressure to honor, not a failure to hide —
		// rerouting overload would melt the next shard too.
		writeBuffered(w, resp, name, 0)
		return
	}
	if !deadline.IsZero() && !budgetSpent && time.Now().After(deadline) {
		// Every attempt slice timed out: the budget died inside do(),
		// not at the top of the loop.
		budgetSpent = true
	}
	if budgetSpent {
		g.metrics.budgetExhaustedInc()
		if maxRetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(maxRetryAfter))
		}
		writeGatewayError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("cluster: deadline budget %s exhausted routing job", budget))
		return
	}
	if last != nil {
		writeBuffered(w, last, lastShard, maxRetryAfter)
		return
	}
	if maxRetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(maxRetryAfter))
	}
	writeGatewayError(w, http.StatusBadGateway, "cluster: no shard reachable for job")
}

// jobCandidates orders shards for a job-ID read: the ID's shard prefix
// first (the issuer), then ring successors derived from the ID's
// 8-hex-char spec-hash suffix (where a rebalance would have moved it),
// then everything else — filtered to alive shards first. Reads route
// to alive-but-draining shards too: drain means "no new work", not "no
// answers".
func (g *Gateway) jobCandidates(id string) []string {
	var order []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
	}
	if prefix, _, ok := strings.Cut(id, "-"); ok {
		if _, known := g.shards[prefix]; known {
			add(prefix)
		}
	}
	if i := strings.LastIndex(id, "-"); i >= 0 && len(id)-i-1 == 8 {
		for _, name := range g.ring.Successors(id[i+1:]) {
			add(name)
		}
	}
	for _, name := range g.ring.Shards() {
		add(name)
	}
	alive := make([]string, 0, len(order))
	var dead []string
	for _, name := range order {
		if g.prober.Alive(name) {
			alive = append(alive, name)
		} else {
			dead = append(dead, name)
		}
	}
	return append(alive, dead...)
}

// handleJobGet answers GET /v1/jobs/{id}(/trace) with bounded hedging:
// the primary candidate gets HedgeDelay to answer before the next
// candidate is tried in parallel, and the first definitive answer
// (anything but a 404 miss or a failure) wins. Misses walk the
// candidate list — a rebalanced job lives on the origin's ring
// successor, not the shard its ID names.
func (g *Gateway) handleJobGet(w http.ResponseWriter, r *http.Request, suffix string) {
	id := r.PathValue("id")
	candidates := g.jobCandidates(id)
	path := "/v1/jobs/" + id + suffix
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	g.metrics.proxiedInc()
	budget, err := submitBudget(r)
	if err != nil {
		writeGatewayError(w, http.StatusBadRequest, err.Error())
		return
	}

	type attempt struct {
		shard  string
		hedged bool
		resp   *bufferedResponse
		err    error
	}
	results := make(chan attempt, len(candidates))
	ctx, cancel := context.WithCancel(r.Context())
	if budget > 0 {
		// The whole candidate walk — hedges included — shares the one
		// deadline budget.
		ctx, cancel = context.WithTimeout(r.Context(), budget)
	}
	defer cancel()
	fire := func(shard string, hedged bool) {
		go func() {
			resp, err := g.do(ctx, shard, http.MethodGet, path, nil, r.Header)
			results <- attempt{shard: shard, hedged: hedged, resp: resp, err: err}
		}()
	}

	launched := 1
	pending := 1
	fire(candidates[0], false)
	var miss *bufferedResponse
	missShard := ""
	timer := time.NewTimer(g.hedgeDelay)
	defer timer.Stop()
	for pending > 0 {
		select {
		case a := <-results:
			pending--
			if a.err != nil {
				g.metrics.upstreamErrorInc()
				g.prober.ObserveFailure(a.shard, a.err)
				if ctx.Err() == nil && launched < len(candidates) {
					fire(candidates[launched], false)
					launched++
					pending++
				}
				continue
			}
			if a.resp.status < 500 && a.resp.status != http.StatusNotFound {
				if a.hedged {
					g.metrics.hedgeWinInc()
				}
				writeBuffered(w, a.resp, a.shard, 0)
				return
			}
			if a.resp.status == http.StatusNotFound && miss == nil {
				miss, missShard = a.resp, a.shard
			}
			if launched < len(candidates) {
				fire(candidates[launched], false)
				launched++
				pending++
			}
		case <-timer.C:
			// The primary is slow, not failed: hedge to the next
			// candidate if the global budget allows.
			if launched < len(candidates) {
				select {
				case g.hedgeSem <- struct{}{}:
					g.metrics.hedgeInc()
					shard := candidates[launched]
					launched++
					pending++
					go func() {
						defer func() { <-g.hedgeSem }()
						resp, err := g.do(ctx, shard, http.MethodGet, path, nil, r.Header)
						results <- attempt{shard: shard, hedged: true, resp: resp, err: err}
					}()
				default:
					// Budget exhausted: wait for the primary.
				}
			}
		}
	}
	if miss != nil {
		writeBuffered(w, miss, missShard, 0)
		return
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		g.metrics.budgetExhaustedInc()
		writeGatewayError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("cluster: deadline budget %s exhausted reading job %q", budget, id))
		return
	}
	writeGatewayError(w, http.StatusBadGateway, fmt.Sprintf("cluster: no shard could answer for job %q", id))
}

// forwardAnyReady proxies a read to the first shard accepting work
// (falling back to any alive shard), trying the next on failure.
func (g *Gateway) forwardAnyReady(w http.ResponseWriter, r *http.Request) {
	g.metrics.proxiedInc()
	path := r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	var order []string
	for _, name := range g.ring.Shards() {
		if g.prober.Ready(name) {
			order = append(order, name)
		}
	}
	for _, name := range g.ring.Shards() {
		if !g.prober.Ready(name) && g.prober.Alive(name) {
			order = append(order, name)
		}
	}
	for _, name := range order {
		resp, err := g.do(r.Context(), name, http.MethodGet, path, nil, r.Header)
		if err != nil {
			g.metrics.upstreamErrorInc()
			g.prober.ObserveFailure(name, err)
			continue
		}
		writeBuffered(w, resp, name, 0)
		return
	}
	writeGatewayError(w, http.StatusBadGateway, "cluster: no shard reachable")
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := strings.ToLower(r.URL.Query().Get("format")); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = g.metrics.WriteText(w)
	case "prometheus", "prom":
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = g.metrics.WritePrometheus(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(g.metrics.Snapshot())
	default:
		writeGatewayError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown metrics format %q (want text, prometheus, or json)", format))
	}
}

// GatewayHealth is the gateway's /healthz and /readyz payload.
type GatewayHealth struct {
	Status string `json:"status"` // "ok" or "degraded"
	// ReadyShards / AliveShards count the probe verdicts; the gateway
	// itself is unready only when no shard is ready.
	ReadyShards int                   `json:"ready_shards"`
	AliveShards int                   `json:"alive_shards"`
	TotalShards int                   `json:"total_shards"`
	Shards      map[string]ProbeState `json:"shards"`
	// ConfigHash is the hardware config-set hash the ready shards agree
	// on (empty until a probe sweep reports one). ConfigConsensus is
	// false when ready shards disagree — the state in which the write
	// paths answer 503 and simgate_config_mismatch_total counts up.
	ConfigHash      string `json:"config_hash,omitempty"`
	ConfigConsensus bool   `json:"config_consensus"`
	Time            string `json:"time"`
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := GatewayHealth{
		Status:      "ok",
		Shards:      g.prober.States(),
		TotalShards: len(g.shards),
		Time:        time.Now().UTC().Format(time.RFC3339),
	}
	h.ConfigHash, h.ConfigConsensus = g.prober.ConfigConsensus()
	for _, st := range h.Shards {
		if st.Alive {
			h.AliveShards++
		}
		if st.Ready {
			h.ReadyShards++
		}
	}
	status := http.StatusOK
	if h.ReadyShards == 0 || !h.ConfigConsensus {
		h.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}
