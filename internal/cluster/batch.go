package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"sigkern/internal/svc"
)

// maxBatchBody bounds POST /v1/batch request bodies at the gateway,
// matching the shard-side cap.
const maxBatchBody = 16 << 20

// batchCell is one parsed batch cell: the client-visible index, the
// normalized spec, and its canonical hash (the routing key).
type batchCell struct {
	index int
	spec  svc.JobSpec
	hash  string
}

// handleBatch splits one batch across the ring by each cell's spec
// hash and merges the shards' NDJSON streams back into a single
// response. Each shard group is one upstream POST /v1/batch carrying
// explicit per-line index fields, so a cell's index survives the split;
// lines are relayed to the client as they arrive, serialized through
// one writer. A failed sub-batch reroutes its unanswered cells to the
// group's ring successors; cells no shard could run come back as
// synthesized failed lines, never a dropped index. Per-shard summary
// lines are swallowed and replaced with one merged summary.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !g.guardConfigConsensus(w) {
		return
	}
	cells, ok := g.readBatchCells(w, r)
	if !ok {
		return
	}
	g.metrics.proxiedInc()
	groups := make(map[string][]batchCell)
	for _, c := range cells {
		owner := g.routeOrder(c.hash)[0]
		groups[owner] = append(groups[owner], c)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Batch-Cells", strconv.Itoa(len(cells)))
	w.WriteHeader(http.StatusOK)
	mw := &mergeWriter{w: w}
	if fl, ok := w.(http.Flusher); ok {
		mw.fl = fl
		// Headers out before the first shard answers, so streaming
		// clients can start reading immediately.
		fl.Flush()
	}
	var wg sync.WaitGroup
	for shard, group := range groups {
		wg.Add(1)
		go func(shard string, group []batchCell) {
			defer wg.Done()
			g.streamSubBatch(r, shard, group, mw)
		}(shard, group)
	}
	wg.Wait()
	sum, _ := json.Marshal(svc.BatchSummary{
		Done:      true,
		Cells:     len(cells),
		Failed:    mw.failed,
		FromCache: mw.fromCache,
	})
	mw.writeCell(sum, false, false)
}

// readBatchCells parses and normalizes the batch body — NDJSON lines
// or, under Content-Type application/json, the compact grid form — and
// computes each cell's routing hash. On failure it writes the error
// (400 with the line number, 413 past the caps) and reports ok=false.
func (g *Gateway) readBatchCells(w http.ResponseWriter, r *http.Request) ([]batchCell, bool) {
	body := http.MaxBytesReader(w, r.Body, maxBatchBody)
	var cells []batchCell
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		var grid svc.BatchGrid
		if err := dec.Decode(&grid); err != nil {
			writeGatewayError(w, statusForBodyErr(err), "bad batch grid: "+err.Error())
			return nil, false
		}
		for i, spec := range grid.Expand() {
			cells = append(cells, batchCell{index: i, spec: spec})
		}
	} else {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			raw := bytes.TrimSpace(sc.Bytes())
			if len(raw) == 0 {
				continue
			}
			var bl struct {
				svc.JobSpec
				Index *int `json:"index"`
			}
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&bl); err != nil {
				writeGatewayError(w, http.StatusBadRequest,
					fmt.Sprintf("bad batch line %d: %v", line, err))
				return nil, false
			}
			idx := len(cells)
			if bl.Index != nil {
				idx = *bl.Index
			}
			cells = append(cells, batchCell{index: idx, spec: bl.JobSpec})
		}
		if err := sc.Err(); err != nil {
			writeGatewayError(w, statusForBodyErr(err), "reading batch body: "+err.Error())
			return nil, false
		}
	}
	if len(cells) == 0 {
		writeGatewayError(w, http.StatusBadRequest, "cluster: empty batch")
		return nil, false
	}
	if len(cells) > svc.MaxBatchCells {
		writeGatewayError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("cluster: batch of %d cells exceeds cap of %d", len(cells), svc.MaxBatchCells))
		return nil, false
	}
	// Normalize and hash here: no shard would accept an invalid spec, so
	// routing it through the ring would just multiply the error.
	for i := range cells {
		norm, err := cells[i].spec.Normalize()
		if err != nil {
			writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("batch cell %d: %v", i, err))
			return nil, false
		}
		hash, err := norm.Hash()
		if err != nil {
			writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("batch cell %d: %v", i, err))
			return nil, false
		}
		cells[i].spec, cells[i].hash = norm, hash
	}
	return cells, true
}

// statusForBodyErr maps a body-read failure onto 413 when it came from
// the MaxBytesReader cap and 400 otherwise.
func statusForBodyErr(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// streamSubBatch drives one shard group to completion: try each
// candidate in ring order, resending only the cells no attempt has
// answered yet, and synthesize failed lines for whatever is left when
// the candidates run out.
func (g *Gateway) streamSubBatch(r *http.Request, owner string, group []batchCell, mw *mergeWriter) {
	order := g.routeOrder(group[0].hash)
	answered := make(map[int]bool)
	path := "/v1/batch"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	lastErr := "no shard reachable for batch"
	for _, name := range order {
		var pend []batchCell
		for _, c := range group {
			if !answered[c.index] {
				pend = append(pend, c)
			}
		}
		if len(pend) == 0 {
			return
		}
		br := g.breakers.Get(name)
		if err := br.Allow(); err != nil {
			g.metrics.breakerRejectedInc()
			lastErr = err.Error()
			continue
		}
		ok, errMsg := g.streamAttempt(r, name, path, pend, answered, mw)
		br.Record(ok)
		if ok {
			if name != owner {
				g.metrics.rerouteInc()
			}
			return
		}
		lastErr = errMsg
	}
	for _, c := range group {
		if !answered[c.index] {
			answered[c.index] = true
			mw.writeFailedCell(c, lastErr)
		}
	}
}

// streamAttempt POSTs one sub-batch to one shard and relays its NDJSON
// stream line by line, marking each answered index. It reports ok=false
// on transport errors and 5xx (the caller reroutes the unanswered
// remainder); a 4xx refusal fails the pending cells in place — a
// successor would refuse the same specs — and still counts as the shard
// working.
func (g *Gateway) streamAttempt(r *http.Request, shard, path string, pend []batchCell, answered map[int]bool, mw *mergeWriter) (bool, string) {
	s, ok := g.shards[shard]
	if !ok {
		return false, fmt.Sprintf("unknown shard %q", shard)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, c := range pend {
		_ = enc.Encode(struct {
			svc.JobSpec
			Index int `json:"index"`
		}{c.spec, c.index})
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, s.URL+path, &buf)
	if err != nil {
		return false, err.Error()
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	for _, k := range []string{"X-Request-Id", "X-Deadline-Budget", "Accept"} {
		if v := r.Header.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.metrics.upstreamErrorInc()
		g.prober.ObserveFailure(shard, err)
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		msg := fmt.Sprintf("shard %s: %s: %s", shard, resp.Status, bytes.TrimSpace(body))
		if resp.StatusCode >= 500 {
			g.metrics.upstreamErrorInc()
			return false, msg
		}
		for _, c := range pend {
			answered[c.index] = true
			mw.writeFailedCell(c, msg)
		}
		return true, ""
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Index     *int   `json:"index"`
			ID        string `json:"id"`
			State     string `json:"state"`
			FromCache bool   `json:"from_cache"`
			Done      bool   `json:"done"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			continue
		}
		if probe.ID == "" && probe.Done {
			// The shard's own summary: swallowed, the gateway emits one
			// merged summary after every group finishes.
			continue
		}
		if probe.Index != nil {
			answered[*probe.Index] = true
		}
		mw.writeCell(raw, probe.State == string(svc.Failed), probe.FromCache)
	}
	if err := sc.Err(); err != nil {
		g.metrics.upstreamErrorInc()
		g.prober.ObserveFailure(shard, err)
		return false, err.Error()
	}
	return true, ""
}

// mergeWriter serializes concurrent shard streams into one NDJSON
// response, flushing per line so the client sees cells as they
// complete. The tallies are read without the lock only after every
// group goroutine has finished.
type mergeWriter struct {
	mu        sync.Mutex
	w         io.Writer
	fl        http.Flusher
	failed    int
	fromCache int
}

func (mw *mergeWriter) writeCell(line []byte, failed, fromCache bool) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	if failed {
		mw.failed++
	}
	if fromCache {
		mw.fromCache++
	}
	_, _ = mw.w.Write(line)
	_, _ = mw.w.Write([]byte("\n"))
	if mw.fl != nil {
		mw.fl.Flush()
	}
}

// writeFailedCell emits a synthesized failed line for a cell no shard
// could answer, preserving its index and spec so the client's
// bookkeeping stays complete.
func (mw *mergeWriter) writeFailedCell(c batchCell, msg string) {
	line, _ := json.Marshal(struct {
		Index int         `json:"index"`
		Spec  svc.JobSpec `json:"spec"`
		State svc.State   `json:"state"`
		Error string      `json:"error"`
	}{c.index, c.spec, svc.Failed, "cluster: " + msg})
	mw.writeCell(line, true, false)
}
