package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/svc"
)

// stallShard answers probes instantly but stalls every submit until
// the request context dies — a shard that is alive and ready but
// pathologically slow.
func stallShard(t *testing.T) *httptest.Server {
	t.Helper()
	stop := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" || r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		// Stall until the caller gives up or the test tears down (the
		// stop channel lets Server.Close reclaim handlers whose client
		// abort the server never noticed).
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	}))
	t.Cleanup(func() {
		close(stop)
		srv.Close()
	})
	return srv
}

func postSpec(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	w := smallWorkload()
	body, err := json.Marshal(svc.JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestGatewayBudgetExhausted504: with every shard stalling, a submit
// carrying a deadline budget must come back 504 once the budget is
// spent — not hang for the transport timeout, and not 502.
func TestGatewayBudgetExhausted504(t *testing.T) {
	s1, s2 := stallShard(t), stallShard(t)
	gw, err := NewGateway(Options{
		Shards:        []Shard{{Name: "s1", URL: s1.URL}, {Name: "s2", URL: s2.URL}},
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	start := time.Now()
	resp := postSpec(t, gwSrv.URL, map[string]string{"X-Deadline-Budget": "300ms"})
	defer resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %s: the budget did not bound the attempts", elapsed)
	}
	if got := gw.Metrics().Snapshot().BudgetExhausted; got != 1 {
		t.Fatalf("budget_exhausted_total = %d, want 1", got)
	}
}

// TestGatewayBudgetFromTimeoutQuery: a client that set only ?timeout=
// gets the same protection — the wait timeout doubles as the deadline
// budget.
func TestGatewayBudgetFromTimeoutQuery(t *testing.T) {
	s1 := stallShard(t)
	gw, err := NewGateway(Options{Shards: []Shard{{Name: "s1", URL: s1.URL}}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	start := time.Now()
	w := smallWorkload()
	body, _ := json.Marshal(svc.JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w})
	req, err := http.NewRequest(http.MethodPost, gwSrv.URL+"/v1/jobs?wait=1&timeout=300ms", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("504 took %s: ?timeout= did not bound the route", elapsed)
	}
}

// TestGatewayForwardsSlicedBudget: the shard must see an
// X-Deadline-Budget no larger than what the client sent — the gateway
// slices the remaining budget across attempts instead of forwarding
// the original untouched (satellite: the per-attempt context derives
// from the budget, not the bare request context).
func TestGatewayForwardsSlicedBudget(t *testing.T) {
	var mu sync.Mutex
	var got []string
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" || r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		mu.Lock()
		got = append(got, r.Header.Get("X-Deadline-Budget"))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":"s1-1","state":"done"}`))
	}))
	defer fast.Close()
	gw, err := NewGateway(Options{Shards: []Shard{{Name: "s1", URL: fast.URL}}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	resp := postSpec(t, gwSrv.URL, map[string]string{"X-Deadline-Budget": "10s"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("shard saw %d submits, want 1", len(got))
	}
	d, err := time.ParseDuration(got[0])
	if err != nil {
		t.Fatalf("shard saw X-Deadline-Budget %q: %v", got[0], err)
	}
	if d <= 0 || d > 10*time.Second {
		t.Fatalf("forwarded budget %s outside (0, 10s]", d)
	}
}
