// Gateway batch tests: POST /v1/batch splits a group across the ring
// by spec hash, merges the shards' NDJSON streams into one response,
// and survives a shard dying mid-group — every submitted index comes
// back exactly once, bit-identical to a single-node run.
package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/svc"
)

// postBatch POSTs body to the gateway's /v1/batch and decodes the
// merged NDJSON stream into cells (keyed by index) plus the trailing
// summary.
func postBatch(t *testing.T, url, contentType, body string) (map[int]svc.BatchResult, svc.BatchSummary, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("POST /v1/batch: %d: %s", resp.StatusCode, buf.String())
	}
	cells := make(map[int]svc.BatchResult)
	var sum svc.BatchSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Index *int `json:"index"`
			Done  bool `json:"done"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", raw, err)
		}
		if probe.Index == nil {
			// The merged summary is the only index-less line.
			if err := json.Unmarshal(raw, &sum); err != nil || !probe.Done {
				t.Fatalf("unexpected stream line %q", raw)
			}
			continue
		}
		var br svc.BatchResult
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("bad cell line %q: %v", raw, err)
		}
		if _, dup := cells[br.Index]; dup {
			t.Fatalf("index %d answered twice", br.Index)
		}
		cells[br.Index] = br
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return cells, sum, resp
}

// gridBody builds the compact grid form covering all five machines —
// guaranteed to hash across more than one of three shards.
func gridBody(t *testing.T) string {
	t.Helper()
	w := smallWorkload()
	body, err := json.Marshal(svc.BatchGrid{
		Kernels:   []core.KernelID{core.CornerTurn, core.BeamSteering},
		Workloads: []*core.Workload{&w},
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestGatewayBatchSplitsAndMerges: a 10-cell grid through the gateway
// answers every index exactly once with the same cycles a single node
// computes, and the work actually spreads over multiple shards.
func TestGatewayBatchSplitsAndMerges(t *testing.T) {
	tc := newTestCluster(t, nil)
	cells, sum, _ := postBatch(t, tc.gwSrv.URL, "application/json", gridBody(t))

	w := smallWorkload()
	want := svc.BatchGrid{
		Kernels:   []core.KernelID{core.CornerTurn, core.BeamSteering},
		Workloads: []*core.Workload{&w},
	}.Expand()
	if len(cells) != len(want) || sum.Cells != len(want) || sum.Failed != 0 {
		t.Fatalf("cells %d, summary %+v, want %d cells", len(cells), sum, len(want))
	}

	// Every cell bit-identical to a direct single-node run.
	ref := svc.NewService(svc.Options{})
	defer ref.Close()
	for i, spec := range want {
		br, ok := cells[i]
		if !ok {
			t.Fatalf("index %d missing from merged stream", i)
		}
		if br.State != svc.Done || br.Result == nil {
			t.Fatalf("cell %d: state %s error %q", i, br.State, br.Error)
		}
		refJob, err := ref.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		refDone, err := ref.Wait(t.Context(), refJob.ID)
		if err != nil {
			t.Fatal(err)
		}
		if br.Result.Cycles != refDone.Result.Cycles {
			t.Fatalf("cell %d (%s/%s): gateway %d cycles, single node %d",
				i, spec.Machine, spec.Kernel, br.Result.Cycles, refDone.Result.Cycles)
		}
	}

	// The split was real: more than one shard holds member jobs.
	shardsUsed := 0
	for _, s := range tc.services {
		if len(s.Jobs()) > 0 {
			shardsUsed++
		}
	}
	if shardsUsed < 2 {
		t.Fatalf("batch landed on %d shard(s); want a real split", shardsUsed)
	}
}

// TestGatewayBatchShardDeathReroutes kills one shard before the batch:
// its cells reroute to ring successors, the merged stream still covers
// every index, and nothing fails.
func TestGatewayBatchShardDeathReroutes(t *testing.T) {
	tc := newTestCluster(t, nil)
	// Find a shard that owns at least one cell of the grid, then kill it.
	w := smallWorkload()
	specs := svc.BatchGrid{
		Kernels:   []core.KernelID{core.CornerTurn, core.BeamSteering},
		Workloads: []*core.Workload{&w},
	}.Expand()
	owners := make(map[string]bool)
	for _, spec := range specs {
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		hash, err := norm.Hash()
		if err != nil {
			t.Fatal(err)
		}
		owners[tc.gw.routeOrder(hash)[0]] = true
	}
	var victim string
	for name := range owners {
		victim = name
		break
	}
	tc.servers[victim].Close()

	before := tc.gw.Metrics().Reroutes()
	cells, sum, _ := postBatch(t, tc.gwSrv.URL, "application/json", gridBody(t))
	if len(cells) != len(specs) || sum.Failed != 0 {
		t.Fatalf("after killing %s: %d cells, summary %+v", victim, len(cells), sum)
	}
	for i := range specs {
		br, ok := cells[i]
		if !ok {
			t.Fatalf("index %d lost after shard death", i)
		}
		if br.State != svc.Done || br.Result == nil {
			t.Fatalf("cell %d: state %s error %q", i, br.State, br.Error)
		}
	}
	if tc.gw.Metrics().Reroutes() <= before {
		t.Fatal("shard death produced no reroute")
	}
	if len(tc.services[victim].Jobs()) != 0 {
		t.Fatalf("dead shard %s somehow ran jobs", victim)
	}
}

// TestGatewayBatchAllShardsDeadSynthesizesFailures: with the whole
// ring down, every index still comes back — as a synthesized failed
// cell carrying the spec — and the summary counts them.
func TestGatewayBatchAllShardsDeadSynthesizesFailures(t *testing.T) {
	tc := newTestCluster(t, nil)
	for _, srv := range tc.servers {
		srv.Close()
	}
	cells, sum, _ := postBatch(t, tc.gwSrv.URL, "application/json", gridBody(t))
	w := smallWorkload()
	want := svc.BatchGrid{
		Kernels:   []core.KernelID{core.CornerTurn, core.BeamSteering},
		Workloads: []*core.Workload{&w},
	}.Expand()
	if len(cells) != len(want) || sum.Failed != len(want) {
		t.Fatalf("cells %d, summary %+v, want %d failed", len(cells), sum, len(want))
	}
	for i := range want {
		br, ok := cells[i]
		if !ok {
			t.Fatalf("index %d dropped instead of synthesized", i)
		}
		if br.State != svc.Failed || br.Error == "" {
			t.Fatalf("cell %d: state %s error %q, want synthesized failure", i, br.State, br.Error)
		}
	}
}

// TestGatewayBatchBadLineAndOversized pins the gateway-side input
// errors: a malformed NDJSON line answers 400 naming the line, and a
// cell count past the cap answers 413 without touching any shard.
func TestGatewayBatchBadLineAndOversized(t *testing.T) {
	tc := newTestCluster(t, nil)

	w := smallWorkload()
	good, err := json.Marshal(svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.gwSrv.URL+"/v1/batch", "application/x-ndjson",
		strings.NewReader(string(good)+"\n{not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), "line 2") {
		t.Fatalf("malformed line: %d %q, want 400 naming line 2", resp.StatusCode, buf.String())
	}

	var big strings.Builder
	for i := 0; i <= svc.MaxBatchCells; i++ {
		fmt.Fprintf(&big, "%s\n", good)
	}
	resp, err = http.Post(tc.gwSrv.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(big.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d, want 413", resp.StatusCode)
	}
	for name, s := range tc.services {
		if n := len(s.Jobs()); n != 0 {
			t.Fatalf("rejected batches leaked %d jobs to shard %s", n, name)
		}
	}
}
