package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func mustRing(t *testing.T, shards ...string) *Ring {
	t.Helper()
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingDeterministicAndStable: ownership is a pure function of the
// key and the shard set — two rings built from the same shards agree
// on every key, regardless of input order.
func TestRingDeterministicAndStable(t *testing.T) {
	a := mustRing(t, "s1", "s2", "s3")
	b := mustRing(t, "s3", "s1", "s2")
	for i := 0; i < 1000; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		key := hex.EncodeToString(sum[:])
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owner depends on construction order (%s vs %s)", key[:8], a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingBalance: with virtual nodes, three shards each own a
// reasonable fraction of a hash-distributed key population.
func TestRingBalance(t *testing.T) {
	r := mustRing(t, "s1", "s2", "s3")
	counts := make(map[string]int)
	const n = 3000
	for i := 0; i < n; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		counts[r.Owner(hex.EncodeToString(sum[:]))]++
	}
	for shard, c := range counts {
		if c < n/6 || c > n/2 {
			t.Fatalf("shard %s owns %d of %d keys — ring badly unbalanced: %v", shard, c, n, counts)
		}
	}
}

// TestRingSuccessorsCoverAllShards: the reroute order starts at the
// owner and visits every shard exactly once.
func TestRingSuccessorsCoverAllShards(t *testing.T) {
	r := mustRing(t, "s1", "s2", "s3")
	sum := sha256.Sum256([]byte("some-key"))
	key := hex.EncodeToString(sum[:])
	succ := r.Successors(key)
	if len(succ) != 3 {
		t.Fatalf("successors = %v, want all 3 shards", succ)
	}
	if succ[0] != r.Owner(key) {
		t.Fatalf("successors[0] = %s, owner = %s", succ[0], r.Owner(key))
	}
	seen := make(map[string]bool)
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("shard %s repeated in %v", s, succ)
		}
		seen[s] = true
	}
}

// TestKeyPointPrefixEquivalence: the ring point derives from the first
// 8 hex characters of the spec hash, so the full 64-char hash (submit
// path) and the 8-char suffix embedded in a job ID (status-poll path)
// route to the same shard.
func TestKeyPointPrefixEquivalence(t *testing.T) {
	r := mustRing(t, "s1", "s2", "s3")
	for i := 0; i < 200; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("spec-%d", i)))
		full := hex.EncodeToString(sum[:])
		if r.Owner(full) != r.Owner(full[:8]) {
			t.Fatalf("hash %s: full routes to %s, 8-char prefix to %s", full[:8], r.Owner(full), r.Owner(full[:8]))
		}
	}
}

// TestRingRejectsBadShards: empty and duplicate names are construction
// errors, not silent misrouting.
func TestRingRejectsBadShards(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"s1", "s1"}, 0); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty shard name accepted")
	}
}
