package cluster

import (
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"
)

// Shard is one simserved backend: a stable name (its ring identity and
// job-ID prefix) and the base URL it serves on.
type Shard struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ParseShards parses a static membership spec of the form
// "s1=http://host:port,s2=http://host:port". Names must be unique.
func ParseShards(spec string) ([]Shard, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var shards []Shard
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad shard entry %q (want name=url)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate shard %q", name)
		}
		seen[name] = true
		u, err := url.Parse(addr)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad shard URL %q for %s", addr, name)
		}
		shards = append(shards, Shard{Name: name, URL: strings.TrimRight(addr, "/")})
	}
	return shards, nil
}

// ParseKVSpec parses a "name=value,name=value" spec into a map —
// shared by the -shardfiles and -journals flags.
func ParseKVSpec(spec string) (map[string]string, error) {
	out := make(map[string]string)
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" || val == "" {
			return nil, fmt.Errorf("cluster: bad entry %q (want name=value)", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate entry %q", name)
		}
		out[name] = val
	}
	return out, nil
}

// ResolveAddrFiles turns a map of shard name -> simserved -addrfile
// path into shards, polling each file until it holds a listen address
// or the deadline passes. simserved writes its bound address there
// after the listener is up, so ":0" test clusters can be discovered
// without racing the bind.
func ResolveAddrFiles(files map[string]string, timeout time.Duration) ([]Shard, error) {
	deadline := time.Now().Add(timeout)
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var shards []Shard
	for _, name := range names {
		addr, err := waitForAddr(files[name], deadline)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %s: %w", name, err)
		}
		shards = append(shards, Shard{Name: name, URL: "http://" + addr})
	}
	return shards, nil
}

func waitForAddr(path string, deadline time.Time) (string, error) {
	for {
		data, err := os.ReadFile(path)
		if addr := strings.TrimSpace(string(data)); err == nil && addr != "" {
			return addr, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return "", fmt.Errorf("addrfile %s: %w", path, err)
			}
			return "", fmt.Errorf("addrfile %s: empty after deadline", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
