package cluster

import (
	"strings"
	"testing"
)

// FuzzParseShards: the membership parser faces operator-typed flag
// values; it must never panic, and anything it accepts must hold the
// documented invariants (unique non-empty names, parseable URLs with
// scheme and host, no trailing slash).
func FuzzParseShards(f *testing.F) {
	f.Add("s1=http://localhost:8080")
	f.Add("s1=http://a:1,s2=http://b:2,s3=http://c:3")
	f.Add("s1=http://a:1,s1=http://b:2")
	f.Add(" s1 = http://a:1 , , ")
	f.Add("=http://a:1")
	f.Add("s1=")
	f.Add("s1")
	f.Add("s1=http://a:1/")
	f.Add("s1=://nohost")
	f.Add(",,,")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		shards, err := ParseShards(spec)
		if err != nil {
			return
		}
		seen := make(map[string]bool)
		for _, s := range shards {
			if s.Name == "" {
				t.Fatalf("ParseShards(%q) accepted an empty shard name", spec)
			}
			if seen[s.Name] {
				t.Fatalf("ParseShards(%q) accepted duplicate shard %q", spec, s.Name)
			}
			seen[s.Name] = true
			if s.URL == "" || strings.HasSuffix(s.URL, "/") {
				t.Fatalf("ParseShards(%q) kept unnormalized URL %q", spec, s.URL)
			}
		}
		// Round-trip: re-encoding what was accepted must parse to the
		// same membership. The encoder quotes nothing, so skip inputs
		// whose accepted fields themselves contain separators (a comma
		// inside a URL is valid URL syntax but not re-encodable).
		var parts []string
		for _, s := range shards {
			if strings.ContainsAny(s.Name, ",=") || strings.ContainsAny(s.URL, ",") {
				return
			}
			parts = append(parts, s.Name+"="+s.URL)
		}
		again, err := ParseShards(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("ParseShards round-trip of %q failed: %v", spec, err)
		}
		if len(again) != len(shards) {
			t.Fatalf("ParseShards round-trip of %q: %d shards, want %d", spec, len(again), len(shards))
		}
		for i := range shards {
			if again[i] != shards[i] {
				t.Fatalf("ParseShards round-trip of %q: shard %d = %+v, want %+v", spec, i, again[i], shards[i])
			}
		}
	})
}

// FuzzParseKVSpec mirrors FuzzParseShards for the -shardfiles and
// -journals flag syntax: no panics, no empty or duplicate keys, and
// accepted specs re-encode to the same map.
func FuzzParseKVSpec(f *testing.F) {
	f.Add("a=1,b=2")
	f.Add("a=1,a=2")
	f.Add("=1")
	f.Add("a=")
	f.Add("a")
	f.Add(" a = /tmp/x , b = /tmp/y ")
	f.Add(",,,")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		kv, err := ParseKVSpec(spec)
		if err != nil {
			return
		}
		if kv == nil {
			t.Fatalf("ParseKVSpec(%q) returned a nil map without error", spec)
		}
		var parts []string
		for k, v := range kv {
			if k == "" || v == "" {
				t.Fatalf("ParseKVSpec(%q) accepted empty key or value (%q=%q)", spec, k, v)
			}
			if strings.ContainsAny(k, ",=") || strings.ContainsAny(v, ",") {
				return
			}
			parts = append(parts, k+"="+v)
		}
		again, err := ParseKVSpec(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("ParseKVSpec round-trip of %q failed: %v", spec, err)
		}
		if len(again) != len(kv) {
			t.Fatalf("ParseKVSpec round-trip of %q: %d entries, want %d", spec, len(again), len(kv))
		}
		for k, v := range kv {
			if again[k] != v {
				t.Fatalf("ParseKVSpec round-trip of %q: %q=%q, want %q", spec, k, again[k], v)
			}
		}
	})
}
