package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/svc"
)

// postDSE posts a DSERequest through the gateway and returns the
// response; the caller owns resp.Body.
func postDSE(t *testing.T, url string, req svc.DSERequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/dse", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readDSEStream decodes a merged /v1/dse NDJSON response into its
// point lines plus the final gateway summary.
func readDSEStream(t *testing.T, body io.Reader) (points []svc.DSEPoint, sum svc.DSESummary) {
	t.Helper()
	dec := json.NewDecoder(body)
	sawSummary := false
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		if sawSummary {
			t.Fatalf("line after summary: %s", raw)
		}
		var probe struct {
			Index  *int `json:"index"`
			Points *int `json:"points"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", raw, err)
		}
		if probe.Points != nil && probe.Index == nil {
			if err := json.Unmarshal(raw, &sum); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var pt svc.DSEPoint
		if err := json.Unmarshal(raw, &pt); err != nil {
			t.Fatalf("bad point line %q: %v", raw, err)
		}
		points = append(points, pt)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return points, sum
}

// TestGatewayDSELanesSweep is the cluster half of the sweep acceptance
// criterion: the same VIRAM lanes exploration that works against one
// simserved works through simgate — split across shards by each
// design point's canonical spec hash, streamed back merged with global
// indices intact, and summarized under one gateway-computed Pareto
// frontier.
func TestGatewayDSELanesSweep(t *testing.T) {
	tc := newTestCluster(t, nil)
	resp := postDSE(t, tc.gwSrv.URL, svc.DSERequest{
		Base: svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn},
		Axes: []svc.DSEAxis{{Param: "viram.Lanes", Values: []int{2, 4, 8, 16}}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-DSE-Points"); got != "4" {
		t.Fatalf("X-DSE-Points = %q, want 4", got)
	}

	points, sum := readDSEStream(t, resp.Body)
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	byIndex := make(map[int]svc.DSEPoint, len(points))
	for _, pt := range points {
		if pt.State != svc.Done || pt.Error != "" {
			t.Fatalf("point %d (%s): state %s error %q", pt.Index, pt.Label, pt.State, pt.Error)
		}
		byIndex[pt.Index] = pt
	}
	// Global indices survive the shard split: 0..3 in axis order, and
	// the cycle counts improve monotonically with the lane count.
	var prev uint64
	for i := 0; i < 4; i++ {
		pt, ok := byIndex[i]
		if !ok {
			t.Fatalf("global index %d missing from merged stream (have %v)", i, byIndex)
		}
		if i > 0 && pt.Cycles >= prev {
			t.Fatalf("index %d (%s): cycles %d did not improve on %d", i, pt.Label, pt.Cycles, prev)
		}
		prev = pt.Cycles
	}
	// The lanes=8 point is the paper default: its override normalizes
	// away entirely, hashing like a legacy spec.
	if p8 := byIndex[2]; p8.Config != nil {
		t.Fatalf("lanes=8 point kept a config override: %+v", p8.Config)
	}

	if sum.Points != 4 || sum.Failed != 0 || !sum.Done {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.Frontier) == 0 {
		t.Fatal("gateway summary has an empty Pareto frontier")
	}
	for i := 1; i < len(sum.Frontier); i++ {
		a, b := sum.Frontier[i-1], sum.Frontier[i]
		if b.Area < a.Area {
			t.Fatalf("frontier not sorted by area: %+v", sum.Frontier)
		}
		if b.Cycles >= a.Cycles && b.Area >= a.Area {
			t.Fatalf("frontier point %d dominated by %d: %+v", i, i-1, sum.Frontier)
		}
	}
}

// TestGatewayDSEEmptyExploration: no deltas and no axes is the base
// spec alone, end to end through the gateway.
func TestGatewayDSEEmptyExploration(t *testing.T) {
	tc := newTestCluster(t, nil)
	w := smallWorkload()
	resp := postDSE(t, tc.gwSrv.URL, svc.DSERequest{
		Base: svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	points, sum := readDSEStream(t, resp.Body)
	if len(points) != 1 || points[0].State != svc.Done || points[0].Cycles == 0 {
		t.Fatalf("points = %+v", points)
	}
	// The single base point matches a plain job submission for the
	// same spec bit for bit — the shard memo dedups the two.
	spec := svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}
	jresp, job := tc.submit(t, spec, nil)
	if jresp.StatusCode != http.StatusOK || job.Result == nil {
		t.Fatalf("plain submit: %d %+v", jresp.StatusCode, job)
	}
	if job.Result.Cycles != points[0].Cycles {
		t.Fatalf("DSE base point %d cycles != plain job %d", points[0].Cycles, job.Result.Cycles)
	}
	if len(sum.Frontier) != 1 {
		t.Fatalf("frontier = %+v", sum.Frontier)
	}
}

// TestGatewayDSERequestErrors: malformed explorations are rejected at
// the gateway, before any shard sees a byte.
func TestGatewayDSERequestErrors(t *testing.T) {
	tc := newTestCluster(t, nil)
	t.Run("unknown axis", func(t *testing.T) {
		resp := postDSE(t, tc.gwSrv.URL, svc.DSERequest{
			Base: svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn},
			Axes: []svc.DSEAxis{{Param: "viram.Warp", Values: []int{1}}},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("too many points", func(t *testing.T) {
		vals := make([]int, 0, 30)
		for v := 1; v <= 30; v++ {
			vals = append(vals, v)
		}
		resp := postDSE(t, tc.gwSrv.URL, svc.DSERequest{
			Base: svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn},
			Axes: []svc.DSEAxis{
				{Param: "viram.Lanes", Values: vals},
				{Param: "viram.MVL", Values: vals},
			},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", resp.StatusCode)
		}
	})
	t.Run("bad base machine", func(t *testing.T) {
		resp := postDSE(t, tc.gwSrv.URL, svc.DSERequest{
			Base: svc.JobSpec{Machine: "Pentium", Kernel: core.CornerTurn},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

// TestGatewayConfigMismatchRefusesWrites is the wrong-result hazard
// from the issue: one shard restarted with different hardware
// parameters must not silently answer specs the ring routes to it.
// While ready shards report different config-set hashes the gateway
// refuses every write path with 503 and counts
// simgate_config_mismatch_total; reads keep flowing; /healthz reports
// the broken consensus.
func TestGatewayConfigMismatchRefusesWrites(t *testing.T) {
	var shards []Shard
	servers := make([]*httptest.Server, 0, 2)
	services := make([]*svc.Service, 0, 2)
	for _, opt := range []svc.Options{
		{ShardID: "s1"}, // paper-default config hash
		{ShardID: "s2", ConfigHash: "not-the-paper-hardware"},
	} {
		s := svc.NewService(opt)
		srv := httptest.NewServer(s.Handler())
		services = append(services, s)
		servers = append(servers, srv)
		shards = append(shards, Shard{Name: opt.ShardID, URL: srv.URL})
	}
	gw, err := NewGateway(Options{
		Shards:        shards,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start() // synchronous first sweep records both config hashes
	gwSrv := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		gwSrv.Close()
		gw.Close()
		for i, srv := range servers {
			srv.Close()
			services[i].Close()
		}
	})

	if _, ok := gw.Prober().ConfigConsensus(); ok {
		t.Fatal("prober reports consensus across shards with different config hashes")
	}

	w := smallWorkload()
	specBody, _ := json.Marshal(svc.JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w})
	for _, path := range []string{"/v1/jobs", "/v1/batch"} {
		resp, err := http.Post(gwSrv.URL+path, "application/json", bytes.NewReader(specBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("POST %s: 503 without Retry-After", path)
		}
	}
	dresp := postDSE(t, gwSrv.URL, svc.DSERequest{
		Base: svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w},
	})
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /v1/dse: status %d, want 503", dresp.StatusCode)
	}
	if got := gw.Metrics().Snapshot().ConfigMismatch; got < 3 {
		t.Fatalf("config_mismatch_total = %d, want >= 3", got)
	}

	// Reads are config-agnostic and keep flowing.
	lresp, err := http.Get(gwSrv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs during mismatch: %d", lresp.StatusCode)
	}

	// /healthz surfaces the broken consensus as degraded.
	hresp, err := http.Get(gwSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health GatewayHealth
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || health.Status != "degraded" {
		t.Fatalf("healthz = %d %q, want 503 degraded", hresp.StatusCode, health.Status)
	}
	if health.ConfigConsensus {
		t.Fatal("healthz claims config consensus during a mismatch")
	}
}

// TestGatewayConfigConsensusAllowsWrites: agreeing shards — the normal
// cluster — pass the guard, and the agreed hash shows up in /healthz.
func TestGatewayConfigConsensusAllowsWrites(t *testing.T) {
	tc := newTestCluster(t, nil)
	hash, ok := tc.gw.Prober().ConfigConsensus()
	if !ok || hash == "" {
		t.Fatalf("consensus = %q %v on an agreeing cluster", hash, ok)
	}
	w := smallWorkload()
	resp, job := tc.submit(t, svc.JobSpec{Machine: "Imagine", Kernel: core.CornerTurn, Workload: &w}, nil)
	if resp.StatusCode != http.StatusOK || job.State != svc.Done {
		t.Fatalf("submit through agreeing cluster: %d %+v", resp.StatusCode, job)
	}
	if got := tc.gw.Metrics().Snapshot().ConfigMismatch; got != 0 {
		t.Fatalf("config_mismatch_total = %d on an agreeing cluster", got)
	}

	hresp, err := http.Get(tc.gwSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health GatewayHealth
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.ConfigHash != hash || !health.ConfigConsensus {
		t.Fatalf("healthz config fields = %q %v, want %q true", health.ConfigHash, health.ConfigConsensus, hash)
	}
}
