package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"sigkern/internal/machines"
	"sigkern/internal/svc"
)

// guardConfigConsensus refuses a write when the ready shards disagree
// on their hardware config-set hash. Routing a job into a split-config
// cluster is a wrong-result hazard, not an availability problem: both
// shards would answer 200, with different cycle counts for the same
// canonical spec hash, and reroutes/rebalances would mix them in the
// same memo space. 503 until the operator converges the fleet.
func (g *Gateway) guardConfigConsensus(w http.ResponseWriter) bool {
	if _, ok := g.prober.ConfigConsensus(); !ok {
		g.metrics.configMismatchInc()
		w.Header().Set("Retry-After", "1")
		writeGatewayError(w, http.StatusServiceUnavailable,
			"cluster: ready shards report different hardware config-set hashes; refusing to route until they agree")
		return false
	}
	return true
}

// dsePoint is one expanded design point at the gateway: its global
// index and label, the delta that reproduces it shard-side, and the
// canonical hash of its runnable spec (the routing key).
type dsePoint struct {
	index int
	label string
	delta *machines.ConfigSet
	spec  svc.JobSpec // normalized, for synthesized failure lines
	hash  string
}

// handleDSE splits one design-space exploration across the ring: the
// gateway expands the request exactly as a shard would, routes each
// design point by its canonical spec hash, and re-packs each shard's
// points as a sub-exploration carrying explicit global indices. Point
// lines are relayed as they arrive; per-shard summaries are swallowed
// and replaced with one merged summary whose Pareto frontier is
// computed at the gateway over every completed point.
func (g *Gateway) handleDSE(w http.ResponseWriter, r *http.Request) {
	if !g.guardConfigConsensus(w) {
		return
	}
	var req svc.DSERequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeGatewayError(w, statusForBodyErr(err), "bad dse request: "+err.Error())
		return
	}
	designs, err := req.Expand()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, svc.ErrDSETooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeGatewayError(w, status, err.Error())
		return
	}
	// Normalize and hash here: no shard would accept an invalid point,
	// and the hash is the routing key.
	points := make([]dsePoint, len(designs))
	for i, d := range designs {
		norm, err := d.Spec.Normalize()
		if err != nil {
			writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("dse point %q: %v", d.Label, err))
			return
		}
		hash, err := norm.Hash()
		if err != nil {
			writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("dse point %q: %v", d.Label, err))
			return
		}
		points[i] = dsePoint{index: d.Index, label: d.Label, delta: d.Spec.Config, spec: norm, hash: hash}
	}

	g.metrics.proxiedInc()
	groups := make(map[string][]dsePoint)
	for _, p := range points {
		owner := g.routeOrder(p.hash)[0]
		groups[owner] = append(groups[owner], p)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-DSE-Points", strconv.Itoa(len(points)))
	w.WriteHeader(http.StatusOK)
	mw := &dseMergeWriter{w: w}
	if fl, ok := w.(http.Flusher); ok {
		mw.fl = fl
		fl.Flush()
	}
	var wg sync.WaitGroup
	for shard, group := range groups {
		wg.Add(1)
		go func(shard string, group []dsePoint) {
			defer wg.Done()
			g.streamSubDSE(r, req.Base, shard, group, mw)
		}(shard, group)
	}
	wg.Wait()
	sum, _ := json.Marshal(svc.DSESummary{
		Done:     true,
		Points:   len(points),
		Failed:   mw.failed,
		Machine:  req.Base.Machine,
		AreaDesc: mw.areaDesc,
		Frontier: svc.ParetoFrontier(mw.completed),
	})
	mw.writeLine(sum, false, nil)
}

// streamSubDSE drives one shard group to completion: each candidate in
// ring order gets a sub-exploration of the still-unanswered points
// (base spec + one delta per point + the global indices), and whatever
// is left when the candidates run out becomes synthesized failed lines.
func (g *Gateway) streamSubDSE(r *http.Request, base svc.JobSpec, owner string, group []dsePoint, mw *dseMergeWriter) {
	order := g.routeOrder(group[0].hash)
	answered := make(map[int]bool)
	path := "/v1/dse"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	lastErr := "no shard reachable for dse"
	for _, name := range order {
		var pend []dsePoint
		for _, p := range group {
			if !answered[p.index] {
				pend = append(pend, p)
			}
		}
		if len(pend) == 0 {
			return
		}
		br := g.breakers.Get(name)
		if err := br.Allow(); err != nil {
			g.metrics.breakerRejectedInc()
			lastErr = err.Error()
			continue
		}
		ok, errMsg := g.streamDSEAttempt(r, base, name, path, pend, answered, mw)
		br.Record(ok)
		if ok {
			if name != owner {
				g.metrics.rerouteInc()
			}
			return
		}
		lastErr = errMsg
	}
	for _, p := range group {
		if !answered[p.index] {
			answered[p.index] = true
			mw.writeFailedPoint(p, lastErr)
		}
	}
}

// streamDSEAttempt POSTs one sub-exploration to one shard and relays
// its NDJSON stream, marking answered indices and collecting completed
// points for the merged frontier. Transport errors and 5xx report
// ok=false (the caller reroutes); a 4xx refusal fails the pending
// points in place — a successor would refuse the same request.
func (g *Gateway) streamDSEAttempt(r *http.Request, base svc.JobSpec, shard, path string, pend []dsePoint, answered map[int]bool, mw *dseMergeWriter) (bool, string) {
	s, ok := g.shards[shard]
	if !ok {
		return false, fmt.Sprintf("unknown shard %q", shard)
	}
	sub := svc.DSERequest{Base: base, Deltas: make([]machines.ConfigSet, len(pend)), Indices: make([]int, len(pend))}
	for i, p := range pend {
		if p.delta != nil {
			sub.Deltas[i] = *p.delta
		}
		sub.Indices[i] = p.index
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return false, err.Error()
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, s.URL+path, bytes.NewReader(body))
	if err != nil {
		return false, err.Error()
	}
	req.Header.Set("Content-Type", "application/json")
	for _, k := range []string{"X-Request-Id", "X-Deadline-Budget", "Accept"} {
		if v := r.Header.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.metrics.upstreamErrorInc()
		g.prober.ObserveFailure(shard, err)
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		msg := fmt.Sprintf("shard %s: %s: %s", shard, resp.Status, bytes.TrimSpace(body))
		if resp.StatusCode >= 500 {
			g.metrics.upstreamErrorInc()
			return false, msg
		}
		for _, p := range pend {
			answered[p.index] = true
			mw.writeFailedPoint(p, msg)
		}
		return true, ""
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Index    *int    `json:"index"`
			Label    string  `json:"label"`
			State    string  `json:"state"`
			Cycles   uint64  `json:"cycles"`
			Area     float64 `json:"area"`
			AreaDesc string  `json:"area_desc"`
			Done     bool    `json:"done"`
			Points   *int    `json:"points"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			continue
		}
		if probe.Points != nil && probe.Index == nil {
			// The shard's own summary: swallowed, the gateway emits one
			// merged summary (and frontier) after every group finishes.
			continue
		}
		if probe.Index != nil {
			answered[*probe.Index] = true
		}
		var fp *svc.DSEFrontierPoint
		if probe.State == string(svc.Done) && probe.Index != nil {
			fp = &svc.DSEFrontierPoint{Index: *probe.Index, Label: probe.Label, Cycles: probe.Cycles, Area: probe.Area}
		}
		if probe.AreaDesc != "" {
			mw.setAreaDesc(probe.AreaDesc)
		}
		mw.writeLine(raw, probe.State == string(svc.Failed), fp)
	}
	if err := sc.Err(); err != nil {
		g.metrics.upstreamErrorInc()
		g.prober.ObserveFailure(shard, err)
		return false, err.Error()
	}
	return true, ""
}

// dseMergeWriter serializes concurrent shard streams into one NDJSON
// response and accumulates the completed points the merged frontier is
// computed from. The tallies are read without the lock only after
// every group goroutine has finished.
type dseMergeWriter struct {
	mu        sync.Mutex
	w         io.Writer
	fl        http.Flusher
	failed    int
	areaDesc  string
	completed []svc.DSEFrontierPoint
}

func (mw *dseMergeWriter) writeLine(line []byte, failed bool, fp *svc.DSEFrontierPoint) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	if failed {
		mw.failed++
	}
	if fp != nil {
		mw.completed = append(mw.completed, *fp)
	}
	_, _ = mw.w.Write(line)
	_, _ = mw.w.Write([]byte("\n"))
	if mw.fl != nil {
		mw.fl.Flush()
	}
}

func (mw *dseMergeWriter) setAreaDesc(desc string) {
	mw.mu.Lock()
	mw.areaDesc = desc
	mw.mu.Unlock()
}

// writeFailedPoint emits a synthesized failed line for a point no
// shard could answer, preserving its global index and label.
func (mw *dseMergeWriter) writeFailedPoint(p dsePoint, msg string) {
	line, _ := json.Marshal(svc.DSEPoint{
		Index:  p.index,
		Label:  p.label,
		Config: p.spec.Config,
		State:  svc.Failed,
		Error:  "cluster: " + msg,
	})
	mw.writeLine(line, true, nil)
}
