package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"sigkern/internal/obs"
)

// Metrics is the gateway's own registry: request routing and failover
// counters plus per-shard health gauges. Names are prefixed simgate_
// so a shared Prometheus scrape never collides with the shards'
// simserved_ families.
type Metrics struct {
	proxied          atomic.Uint64
	reroutes         atomic.Uint64
	hedges           atomic.Uint64
	hedgeWins        atomic.Uint64
	upstreamErrors   atomic.Uint64
	breakerRejected  atomic.Uint64
	budgetExhausted  atomic.Uint64
	configMismatch   atomic.Uint64
	rebalances       atomic.Uint64
	rebalanceRecords atomic.Uint64

	mu      sync.Mutex
	healthy map[string]bool // shard -> last probe verdict (alive)
	ready   map[string]bool // shard -> accepting new work
}

// NewMetrics returns an empty gateway registry.
func NewMetrics() *Metrics {
	return &Metrics{healthy: make(map[string]bool), ready: make(map[string]bool)}
}

func (m *Metrics) proxiedInc() uint64  { return m.proxied.Add(1) }
func (m *Metrics) rerouteInc()         { m.reroutes.Add(1) }
func (m *Metrics) hedgeInc()           { m.hedges.Add(1) }
func (m *Metrics) hedgeWinInc()        { m.hedgeWins.Add(1) }
func (m *Metrics) upstreamErrorInc()   { m.upstreamErrors.Add(1) }
func (m *Metrics) breakerRejectedInc() { m.breakerRejected.Add(1) }
func (m *Metrics) budgetExhaustedInc() { m.budgetExhausted.Add(1) }
func (m *Metrics) configMismatchInc()  { m.configMismatch.Add(1) }
func (m *Metrics) rebalanceDone(records int) {
	m.rebalances.Add(1)
	m.rebalanceRecords.Add(uint64(records))
}

// setShardState records a probe verdict for the health gauges.
func (m *Metrics) setShardState(shard string, alive, ready bool) {
	m.mu.Lock()
	m.healthy[shard] = alive
	m.ready[shard] = ready
	m.mu.Unlock()
}

// Reroutes returns the failover counter (tests and /healthz).
func (m *Metrics) Reroutes() uint64 { return m.reroutes.Load() }

// Hedges returns the hedged-request counter.
func (m *Metrics) Hedges() uint64 { return m.hedges.Load() }

// Snapshot is the JSON form of the gateway metrics.
type Snapshot struct {
	Proxied          uint64          `json:"proxied_total"`
	Reroutes         uint64          `json:"reroutes_total"`
	Hedges           uint64          `json:"hedges_total"`
	HedgeWins        uint64          `json:"hedge_wins_total"`
	UpstreamErrors   uint64          `json:"upstream_errors_total"`
	BreakerRejected  uint64          `json:"breaker_rejected_total"`
	BudgetExhausted  uint64          `json:"budget_exhausted_total"`
	ConfigMismatch   uint64          `json:"config_mismatch_total"`
	Rebalances       uint64          `json:"rebalances_total"`
	RebalanceRecords uint64          `json:"rebalance_records_total"`
	ShardHealthy     map[string]bool `json:"shard_healthy"`
	ShardReady       map[string]bool `json:"shard_ready"`
}

// Snapshot captures every counter and gauge at one instant.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Proxied:          m.proxied.Load(),
		Reroutes:         m.reroutes.Load(),
		Hedges:           m.hedges.Load(),
		HedgeWins:        m.hedgeWins.Load(),
		UpstreamErrors:   m.upstreamErrors.Load(),
		BreakerRejected:  m.breakerRejected.Load(),
		BudgetExhausted:  m.budgetExhausted.Load(),
		ConfigMismatch:   m.configMismatch.Load(),
		Rebalances:       m.rebalances.Load(),
		RebalanceRecords: m.rebalanceRecords.Load(),
		ShardHealthy:     make(map[string]bool),
		ShardReady:       make(map[string]bool),
	}
	m.mu.Lock()
	for k, v := range m.healthy {
		s.ShardHealthy[k] = v
	}
	for k, v := range m.ready {
		s.ShardReady[k] = v
	}
	m.mu.Unlock()
	return s
}

// WriteText renders the flat text form (the default /metrics body).
func (m *Metrics) WriteText(w io.Writer) error {
	s := m.Snapshot()
	for _, row := range []struct {
		name string
		val  uint64
	}{
		{"proxied_total", s.Proxied},
		{"reroutes_total", s.Reroutes},
		{"hedges_total", s.Hedges},
		{"hedge_wins_total", s.HedgeWins},
		{"upstream_errors_total", s.UpstreamErrors},
		{"breaker_rejected_total", s.BreakerRejected},
		{"budget_exhausted_total", s.BudgetExhausted},
		{"config_mismatch_total", s.ConfigMismatch},
		{"rebalances_total", s.Rebalances},
		{"rebalance_records_total", s.RebalanceRecords},
	} {
		if _, err := fmt.Fprintf(w, "%-28s %d\n", row.name, row.val); err != nil {
			return err
		}
	}
	for _, shard := range sortedShardNames(s.ShardHealthy) {
		if _, err := fmt.Fprintf(w, "shard_healthy{%s}           %s\n", shard, boolTo01(s.ShardHealthy[shard])); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "shard_ready{%s}             %s\n", shard, boolTo01(s.ShardReady[shard])); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the simgate_* families in the text
// exposition format, shards in sorted order so scrapes are stable.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	counters := []struct {
		name, help string
		val        uint64
	}{
		{"simgate_requests_total", "Requests proxied to shards.", s.Proxied},
		{"simgate_reroutes_total", "Requests rerouted to a hash-ring successor after a shard failure.", s.Reroutes},
		{"simgate_hedges_total", "Hedged requests fired for idempotent reads.", s.Hedges},
		{"simgate_hedge_wins_total", "Hedged requests that answered before the primary.", s.HedgeWins},
		{"simgate_upstream_errors_total", "Transport-level failures talking to shards.", s.UpstreamErrors},
		{"simgate_breaker_rejected_total", "Requests skipped past a shard with an open circuit breaker.", s.BreakerRejected},
		{"simgate_budget_exhausted_total", "Requests answered 504 because their deadline budget ran out mid-route.", s.BudgetExhausted},
		{"simgate_config_mismatch_total", "Writes refused 503 because ready shards reported different hardware config-set hashes.", s.ConfigMismatch},
		{"simgate_rebalances_total", "WAL rebalances driven to completion.", s.Rebalances},
		{"simgate_rebalance_records_total", "Jobs and memoized results replayed into successors by rebalance.", s.RebalanceRecords},
	}
	for _, c := range counters {
		if err := obs.WritePromHeader(w, c.name, c.help, "counter"); err != nil {
			return err
		}
		if err := obs.WritePromSampleKV(w, c.name, fmt.Sprintf("%d", c.val)); err != nil {
			return err
		}
	}
	if len(s.ShardHealthy) > 0 {
		if err := obs.WritePromHeader(w, "simgate_shard_healthy",
			"Per-shard probe verdict: 1 alive, 0 unreachable.", "gauge"); err != nil {
			return err
		}
		for _, shard := range sortedShardNames(s.ShardHealthy) {
			if err := obs.WritePromSampleKV(w, "simgate_shard_healthy", boolTo01(s.ShardHealthy[shard]), "shard", shard); err != nil {
				return err
			}
		}
		if err := obs.WritePromHeader(w, "simgate_shard_ready",
			"Per-shard readiness: 1 accepting new work, 0 draining/degraded/dead.", "gauge"); err != nil {
			return err
		}
		for _, shard := range sortedShardNames(s.ShardHealthy) {
			if err := obs.WritePromSampleKV(w, "simgate_shard_ready", boolTo01(s.ShardReady[shard]), "shard", shard); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedShardNames(m map[string]bool) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func boolTo01(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
