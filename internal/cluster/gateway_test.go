package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/journal"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/svc"
)

func smallWorkload() core.Workload {
	return core.Workload{
		CornerTurn: cornerturn.Spec{Rows: 64, Cols: 64, BlockSize: 16},
		CSLC:       cslc.Spec{MainChannels: 1, AuxChannels: 1, Samples: 256, SubBands: 3, FFTSize: 64, Radix: fft.Radix4},
		Beam:       beamsteer.Spec{Elements: 64, Directions: 2, Dwells: 2, ShiftBits: 2, Rounding: 2},
	}
}

// testCluster is three real in-process shards behind one gateway.
type testCluster struct {
	gw       *Gateway
	gwSrv    *httptest.Server
	services map[string]*svc.Service
	servers  map[string]*httptest.Server
}

func newTestCluster(t *testing.T, durableDirs map[string]string) *testCluster {
	t.Helper()
	tc := &testCluster{
		services: make(map[string]*svc.Service),
		servers:  make(map[string]*httptest.Server),
	}
	var shards []Shard
	for _, name := range []string{"s1", "s2", "s3"} {
		opts := svc.Options{ShardID: name}
		var s *svc.Service
		if dir, ok := durableDirs[name]; ok {
			var err error
			s, err = svc.OpenDurable(opts, journal.Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			s = svc.NewService(opts)
		}
		srv := httptest.NewServer(s.Handler())
		tc.services[name] = s
		tc.servers[name] = srv
		shards = append(shards, Shard{Name: name, URL: srv.URL})
	}
	gw, err := NewGateway(Options{
		Shards:        shards,
		ProbeInterval: 50 * time.Millisecond,
		HedgeDelay:    20 * time.Millisecond,
		JournalDirs:   durableDirs,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	tc.gw = gw
	tc.gwSrv = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		tc.gwSrv.Close()
		gw.Close()
		for name, srv := range tc.servers {
			srv.Close()
			tc.services[name].Close()
		}
	})
	return tc
}

func (tc *testCluster) submit(t *testing.T, spec svc.JobSpec, header map[string]string) (*http.Response, svc.Job) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, tc.gwSrv.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job svc.Job
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &job)
	return resp, job
}

// TestGatewayRoutesByHashAndServesClusterWideDedup: the same spec
// always lands on the same shard, so the second submission of it is a
// cluster-wide cache hit even with three independent memo tables.
func TestGatewayRoutesByHashAndDedups(t *testing.T) {
	tc := newTestCluster(t, nil)
	w := smallWorkload()
	spec := svc.JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w}

	resp1, job1 := tc.submit(t, spec, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("submit 1: %d", resp1.StatusCode)
	}
	if job1.State != svc.Done || job1.Result == nil {
		t.Fatalf("job 1 not done: %+v", job1)
	}
	shard1 := resp1.Header.Get("X-Simgate-Shard")

	resp2, job2 := tc.submit(t, spec, map[string]string{"Idempotency-Key": "different-key"})
	shard2 := resp2.Header.Get("X-Simgate-Shard")
	if shard1 != shard2 {
		t.Fatalf("same spec routed to %s then %s", shard1, shard2)
	}
	if !job2.FromCache {
		t.Fatalf("second submission not a cache hit: %+v", job2)
	}
	if job2.Result.Cycles != job1.Result.Cycles {
		t.Fatalf("cycles drifted: %d vs %d", job1.Result.Cycles, job2.Result.Cycles)
	}
	// The issuing shard's name prefixes the job ID, so a later GET can
	// route straight back.
	if !strings.HasPrefix(job1.ID, shard1+"-") {
		t.Fatalf("job ID %q does not carry shard prefix %q", job1.ID, shard1)
	}

	// GET through the gateway finds the job by its prefixed ID.
	getResp, err := http.Get(tc.gwSrv.URL + "/v1/jobs/" + job1.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET via gateway: %d", getResp.StatusCode)
	}
}

// TestGatewayReroutesOnShardDeath: killing the owner mid-cluster moves
// its keys to a ring successor with the Idempotency-Key forwarded —
// the job is answered exactly once, by a different shard, and the
// reroute counter moves.
func TestGatewayReroutesOnShardDeath(t *testing.T) {
	tc := newTestCluster(t, nil)
	w := smallWorkload()
	spec := svc.JobSpec{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w}

	resp1, job1 := tc.submit(t, spec, nil)
	owner := resp1.Header.Get("X-Simgate-Shard")
	if owner == "" || job1.State != svc.Done {
		t.Fatalf("first submit: shard=%q job=%+v", owner, job1)
	}

	// Kill the owner. The gateway's next submit of the same spec must
	// land on a successor, not error.
	tc.servers[owner].Close()
	before := tc.gw.Metrics().Reroutes()
	resp2, job2 := tc.submit(t, spec, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("submit after owner death: %d", resp2.StatusCode)
	}
	successor := resp2.Header.Get("X-Simgate-Shard")
	if successor == owner || successor == "" {
		t.Fatalf("expected a successor shard, got %q", successor)
	}
	if job2.Result == nil || job2.Result.Cycles != job1.Result.Cycles {
		t.Fatalf("successor cycles drifted: %+v vs %+v", job2.Result, job1.Result)
	}
	if tc.gw.Metrics().Reroutes() <= before {
		t.Fatal("reroute not counted")
	}

	// Resubmitting to the successor with the same (defaulted) key is an
	// idempotent replay: answered exactly once.
	resp3, job3 := tc.submit(t, spec, nil)
	defer resp3.Body.Close()
	if resp3.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("resubmit after reroute not replayed (headers %v)", resp3.Header)
	}
	if job3.ID != job2.ID {
		t.Fatalf("resubmit made new work: %s vs %s", job3.ID, job2.ID)
	}
}

// TestGatewayForwardsLargestRetryAfter is the satellite regression:
// when every shard sheds with 503 + Retry-After, the gateway must
// answer with the LARGEST value it saw — never a synthesized zero, and
// never just the last shard's smaller hint.
func TestGatewayForwardsLargestRetryAfter(t *testing.T) {
	retryAfters := []string{"7", "2", "4"}
	var shards []Shard
	for i, ra := range retryAfters {
		ra := ra
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			w.Header().Set("Retry-After", ra)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"shedding"}`))
		}))
		defer srv.Close()
		shards = append(shards, Shard{Name: []string{"s1", "s2", "s3"}[i], URL: srv.URL})
	}
	gw, err := NewGateway(Options{Shards: shards, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	w := smallWorkload()
	body, _ := json.Marshal(svc.JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w})
	resp, err := http.Post(gwSrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	got := resp.Header.Get("Retry-After")
	if got != "7" {
		t.Fatalf("Retry-After = %q, want the largest seen (7)", got)
	}
}

// TestGatewayNeverSynthesizesZeroRetryAfter: shards shedding without a
// Retry-After must not produce a zero-valued header at the gateway —
// either a positive value or no header at all.
func TestGatewayNeverSynthesizesZeroRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	gw, err := NewGateway(Options{Shards: []Shard{{Name: "s1", URL: srv.URL}}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	w := smallWorkload()
	body, _ := json.Marshal(svc.JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w})
	resp, err := http.Post(gwSrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ra, present := resp.Header["Retry-After"]; present {
		if len(ra) > 0 && (ra[0] == "0" || ra[0] == "") {
			t.Fatalf("gateway synthesized Retry-After %q", ra[0])
		}
	}
}

// TestGateway429PassesThroughWithShardRetryAfter: queue saturation is
// backpressure, not failure — the 429 and its Retry-After pass through
// unrerouted.
func TestGateway429PassesThrough(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		hits++
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer other.Close()

	// Single-shard ring: the 429 shard owns everything.
	gw, err := NewGateway(Options{Shards: []Shard{{Name: "s1", URL: srv.URL}}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	w := smallWorkload()
	body, _ := json.Marshal(svc.JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w})
	resp, err := http.Post(gwSrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "5" {
		t.Fatalf("429 passthrough: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if hits != 1 {
		t.Fatalf("overloaded shard hit %d times, want 1 (no reroute on 429)", hits)
	}
}

// TestGatewayHedgesSlowReads: a shard that sits on a GET past the
// hedge delay loses to a hedge fired at the next candidate.
func TestGatewayHedgesSlowReads(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"id":"from-slow"}`))
	}))
	defer slow.Close()
	defer close(release)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"id":"from-fast","state":"done"}`))
	}))
	defer fast.Close()

	gw, err := NewGateway(Options{
		Shards:        []Shard{{Name: "s1", URL: slow.URL}, {Name: "s2", URL: fast.URL}},
		ProbeInterval: time.Hour,
		HedgeDelay:    15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	// s1- prefix pins the slow shard as primary.
	resp, err := http.Get(gwSrv.URL + "/v1/jobs/s1-j000001-deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte("from-fast")) {
		t.Fatalf("hedge did not win: %d %s", resp.StatusCode, data)
	}
	if gw.Metrics().Hedges() == 0 {
		t.Fatal("hedge not counted")
	}
}

// TestGatewayReadsWalkMisses: a job rebalanced away from the shard its
// ID names is still found — 404 on the primary walks to the successor
// holding it.
func TestGatewayReadsWalkMisses(t *testing.T) {
	tc := newTestCluster(t, nil)
	w := smallWorkload()
	spec, err := svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Plant the job on a shard that is NOT the one its ID prefix names.
	res := core.Result{Machine: "VIRAM", Kernel: core.CornerTurn, Cycles: 42}
	id := "s1-j000007-" + hash[:8]
	holder := "s2"
	if tc.gw.ring.Owner(hash) == "s1" {
		holder = "s3"
	}
	if _, err := tc.services[holder].IngestJobs([]svc.Job{{ID: id, Spec: spec, Hash: hash, State: svc.Done, Result: &res}}, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(tc.gwSrv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("miss-walk failed: %d", resp.StatusCode)
	}
	var job svc.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.ID != id || job.Result == nil || job.Result.Cycles != 42 {
		t.Fatalf("wrong job from miss-walk: %+v", job)
	}
}

// TestGatewayRebalanceReplaysWAL: a durable shard dies; the gateway
// exports its journal and replays it into ring successors. Every
// terminal job is then served through the gateway — same ID, same
// cycles — and the rebalance metrics move.
func TestGatewayRebalanceReplaysWAL(t *testing.T) {
	dirs := map[string]string{"s1": t.TempDir(), "s2": t.TempDir(), "s3": t.TempDir()}
	tc := newTestCluster(t, dirs)
	w := smallWorkload()
	specs := []svc.JobSpec{
		{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w},
		{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "Imagine", Kernel: core.CSLC, Workload: &w},
		{Machine: "Raw", Kernel: core.BeamSteering, Workload: &w},
	}
	type done struct {
		id     string
		shard  string
		cycles uint64
	}
	var jobs []done
	for _, spec := range specs {
		resp, job := tc.submit(t, spec, nil)
		if resp.StatusCode != http.StatusOK || job.Result == nil {
			t.Fatalf("submit: %d %+v", resp.StatusCode, job)
		}
		jobs = append(jobs, done{id: job.ID, shard: resp.Header.Get("X-Simgate-Shard"), cycles: job.Result.Cycles})
	}
	// Pick whichever shard got work; kill it ungracefully (no drain, no
	// checkpoint — its WAL is all that's left).
	victim := jobs[0].shard
	tc.servers[victim].CloseClientConnections()
	tc.servers[victim].Close()
	tc.services[victim].Pool().Close() // simulate death without Checkpoint
	tc.gw.Prober().Sweep()

	resp, err := http.Post(tc.gwSrv.URL+"/v1/rebalance?shard="+victim, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("rebalance: %d %s", resp.StatusCode, data)
	}
	var res RebalanceResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Shipped == 0 {
		t.Fatalf("rebalance shipped nothing: %+v", res)
	}
	if tc.gw.Metrics().Snapshot().RebalanceRecords == 0 {
		t.Fatal("rebalance records not counted")
	}

	// Every job the victim owned is served through the gateway again:
	// same ID, same cycles, now from a successor.
	for _, j := range jobs {
		getResp, err := http.Get(tc.gwSrv.URL + "/v1/jobs/" + j.id)
		if err != nil {
			t.Fatal(err)
		}
		var job svc.Job
		err = json.NewDecoder(getResp.Body).Decode(&job)
		getResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if getResp.StatusCode != http.StatusOK || job.Result == nil {
			t.Fatalf("job %s lost after rebalance: %d %+v", j.id, getResp.StatusCode, job)
		}
		if job.Result.Cycles != j.cycles {
			t.Fatalf("job %s cycles drifted across rebalance: %d vs %d", j.id, job.Result.Cycles, j.cycles)
		}
	}
}

// TestGatewayRebalanceRefusedWhileAlive: rebalancing a shard that
// still answers probes is a 409 — its own restart replay owns that
// log — unless forced.
func TestGatewayRebalanceRefusedWhileAlive(t *testing.T) {
	dirs := map[string]string{"s1": t.TempDir(), "s2": t.TempDir(), "s3": t.TempDir()}
	tc := newTestCluster(t, dirs)
	resp, err := http.Post(tc.gwSrv.URL+"/v1/rebalance?shard=s1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rebalance of live shard: %d, want 409", resp.StatusCode)
	}
}

// TestGatewayPrometheusExposition: the gateway metric families the
// README documents are present in ?format=prometheus.
func TestGatewayPrometheusExposition(t *testing.T) {
	tc := newTestCluster(t, nil)
	resp, err := http.Get(tc.gwSrv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, name := range []string{
		"simgate_reroutes_total",
		"simgate_hedges_total",
		"simgate_shard_healthy",
		"simgate_rebalance_records_total",
	} {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Fatalf("family %s missing from exposition:\n%s", name, text)
		}
	}
	if !strings.Contains(text, `simgate_shard_healthy{shard="s1"} 1`) {
		t.Fatalf("per-shard gauge missing:\n%s", text)
	}
}

// TestGatewayDrainingShardStopsReceivingNewWork: /readyz-based
// routing — a draining shard keeps serving reads but new submissions
// go to a ring successor.
func TestGatewayDrainingShardStopsReceivingNewWork(t *testing.T) {
	tc := newTestCluster(t, nil)
	w := smallWorkload()
	spec := svc.JobSpec{Machine: "PPC", Kernel: core.BeamSteering, Workload: &w}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := norm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.gw.ring.Owner(hash)
	tc.services[owner].SetDraining(true)
	tc.gw.Prober().Sweep()

	resp, job := tc.submit(t, spec, nil)
	if resp.StatusCode != http.StatusOK || job.Result == nil {
		t.Fatalf("submit during drain: %d %+v", resp.StatusCode, job)
	}
	if got := resp.Header.Get("X-Simgate-Shard"); got == owner {
		t.Fatalf("new work routed to draining shard %s", got)
	}

	// The draining shard is alive, not dead: it still answers reads.
	if !tc.gw.Prober().Alive(owner) {
		t.Fatal("draining shard marked dead")
	}
}
