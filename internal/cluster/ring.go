// Package cluster turns N independent simserved shards into one
// fault-tolerant service: a consistent-hash ring keyed by the
// canonical job-spec hash routes every submission to one shard (so the
// per-shard singleflight coalescing and sharded memo become
// cluster-wide dedup), an active prober tracks which shards are alive
// and ready, per-shard circuit breakers and retry-with-reroute absorb
// shard death, bounded hedged requests cut tail latency on idempotent
// reads, and a WAL rebalance path replays a departed shard's journal
// into its hash-ring successors. Command simgate exposes the gateway
// over HTTP.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per shard: enough that
// three shards split the key space within a few percent of evenly.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over shard names.
// Liveness is deliberately not the ring's business: the ring answers
// "who owns this key, and who comes next", and the router filters by
// health, so a shard's death never reshuffles ownership of the keys it
// did not own.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	shards   []string    // sorted, distinct
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds a ring over the given shard names with the given
// virtual-node count per shard (<= 0 means DefaultReplicas).
func NewRing(shards []string, replicas int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(shards))
	r := &Ring{replicas: replicas}
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("cluster: empty shard name")
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: duplicate shard %q", s)
		}
		seen[s] = true
		r.shards = append(r.shards, s)
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(s, i), shard: s})
		}
	}
	sort.Strings(r.shards)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// vnodeHash places one virtual node: the first 8 bytes of
// sha256("<shard>#<i>").
func vnodeHash(shard string, i int) uint64 {
	sum := sha256.Sum256([]byte(shard + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// KeyPoint maps a routing key onto the ring. Keys are canonical spec
// hashes (hex SHA-256): the point is the first 32 bits of the hash,
// shifted into the top of the keyspace. Only 32 bits on purpose — job
// IDs embed just the first 8 hex characters of the spec hash
// (j000042-<hash8>), and deriving the point from that prefix means a
// status poll routes to the same shard as the submission did, with no
// lookup table. Non-hex keys fall back to hashing the whole string.
func KeyPoint(key string) uint64 {
	if len(key) >= 8 {
		if v, err := strconv.ParseUint(key[:8], 16, 64); err == nil {
			return v << 32
		}
	}
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the shard owning the key: the first virtual node at or
// after the key's point, wrapping around.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(KeyPoint(key))].shard
}

// Successors returns every distinct shard in ring order starting at
// the key's owner — the reroute order when the owner is down. Length
// equals the shard count; the first element is the owner.
func (r *Ring) Successors(key string) []string {
	out := make([]string, 0, len(r.shards))
	seen := make(map[string]bool, len(r.shards))
	idx := r.search(KeyPoint(key))
	for i := 0; i < len(r.points) && len(out) < len(r.shards); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// search finds the index of the first point at or after h, wrapping.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Shards returns the ring's shard names, sorted.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }
