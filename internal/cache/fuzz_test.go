package cache

import "testing"

// FuzzAccessInvariants drives the cache with arbitrary address streams
// and checks the structural invariants: accounting adds up, immediate
// re-access always hits, and latency never drops below the hit time.
func FuzzAccessInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, true)
	f.Add([]byte{255, 0, 255, 0}, false)
	f.Fuzz(func(t *testing.T, addrs []byte, write bool) {
		c := New(G4L1(), &FixedLatency{Latency: 100})
		var n uint64
		for i, a := range addrs {
			addr := (int(a) << 7) | (i & 0x7f)
			lat := c.Access(addr, write && i%2 == 0)
			if lat < uint64(c.Config().HitLatency) {
				t.Fatalf("latency %d below hit time", lat)
			}
			n++
			if lat2 := c.Access(addr, false); lat2 != uint64(c.Config().HitLatency) {
				t.Fatalf("immediate re-access missed (lat %d)", lat2)
			}
			n++
		}
		s := c.Stats()
		if s.Get("hits")+s.Get("misses") != n {
			t.Fatalf("accounting: %d+%d != %d", s.Get("hits"), s.Get("misses"), n)
		}
	})
}
