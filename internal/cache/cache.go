// Package cache implements a set-associative, write-back, write-allocate
// cache simulator with LRU replacement, composable into multi-level
// hierarchies backed by a DRAM controller. It provides the memory system
// of the PowerPC G4 baseline and the data-cache mode that Raw's MIMD
// kernels use (the paper's CSLC on Raw routes data "to local memories
// through cache misses").
//
// Addresses are byte addresses. Timing is returned per access: a hit
// costs the level's hit latency; a miss adds the lower level's cost for
// the whole line. Overlap of outstanding misses is the responsibility of
// the machine model (the G4 model divides stall time by its
// memory-level-parallelism factor), because overlap depends on the
// instruction stream, not on the cache.
package cache

import (
	"errors"
	"fmt"
	"math/bits"

	"sigkern/internal/dram"
	"sigkern/internal/sim"
)

// Level is anything that can serve a line-sized access: a lower cache or
// a DRAM backend.
type Level interface {
	// Access serves a read or write of the line containing byte address
	// addr and returns its latency in cycles.
	Access(addr int, write bool) uint64
	// LineBytes returns the level's line size.
	LineBytes() int
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Assoc      int
	HitLatency int
}

// Validate reports whether the configuration describes a realizable cache.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return errors.New("cache: sizes and associativity must be positive")
	case c.HitLatency < 0:
		return errors.New("cache: negative hit latency")
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc %d",
			c.Name, c.SizeBytes, c.LineBytes*c.Assoc)
	case bits.OnesCount(uint(c.LineBytes)) != 1:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	case bits.OnesCount(uint(c.SizeBytes/(c.LineBytes*c.Assoc))) != 1:
		return fmt.Errorf("cache %s: set count not a power of two", c.Name)
	}
	return nil
}

// G4L1 returns the PowerPC G4's 32 KB, 8-way, 32-byte-line L1 data cache.
func G4L1() Config {
	return Config{Name: "g4-l1d", SizeBytes: 32 << 10, LineBytes: 32, Assoc: 8, HitLatency: 1}
}

// G4L2 returns the G4's 256 KB on-chip L2.
func G4L2() Config {
	return Config{Name: "g4-l2", SizeBytes: 256 << 10, LineBytes: 32, Assoc: 8, HitLatency: 9}
}

// RawTileCache returns the cache configuration a Raw tile presents over
// its 32 KB data SRAM when running in cache-miss (MIMD) mode.
func RawTileCache(tile int) Config {
	return Config{
		Name: fmt.Sprintf("raw-tile%d-cache", tile), SizeBytes: 32 << 10,
		LineBytes: 32, Assoc: 2, HitLatency: 0,
	}
}

type line struct {
	tag   int
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is one simulated cache level. It is not safe for concurrent use.
type Cache struct {
	cfg   Config
	sets  [][]line
	lower Level
	tick  uint64
	stats sim.Stats
}

// New returns a cache over the given lower level. It panics on an invalid
// configuration (configurations are constants in this repository).
func New(cfg Config, lower Level) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if lower == nil {
		panic("cache: nil lower level")
	}
	c := &Cache{cfg: cfg, lower: lower}
	c.Reset()
	return c
}

// Reset invalidates every line and clears statistics. The set arrays
// are allocated once (over a single flat backing slice) and zeroed on
// later resets: the simulators reset between every kernel run, and the
// PPC hierarchy alone holds over a thousand sets.
func (c *Cache) Reset() {
	nsets := c.cfg.SizeBytes / (c.cfg.LineBytes * c.cfg.Assoc)
	if len(c.sets) != nsets {
		backing := make([]line, nsets*c.cfg.Assoc)
		c.sets = make([][]line, nsets)
		for i := range c.sets {
			c.sets[i] = backing[i*c.cfg.Assoc : (i+1)*c.cfg.Assoc : (i+1)*c.cfg.Assoc]
		}
	} else {
		for i := range c.sets {
			clear(c.sets[i])
		}
	}
	c.tick = 0
	c.stats = sim.Stats{}
	if lc, ok := c.lower.(interface{ Reset() }); ok {
		lc.Reset()
	}
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes implements Level.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Stats returns this level's counters (hits, misses, writebacks).
func (c *Cache) Stats() sim.Stats { return c.stats }

// Access implements Level: it serves the access and returns its latency.
func (c *Cache) Access(addr int, write bool) uint64 {
	if addr < 0 {
		addr = -addr
	}
	c.tick++
	lineAddr := addr / c.cfg.LineBytes
	set := lineAddr % len(c.sets)
	tag := lineAddr / len(c.sets)

	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.tick
			if write {
				ways[i].dirty = true
			}
			c.stats.Inc("hits", 1)
			return uint64(c.cfg.HitLatency)
		}
	}
	c.stats.Inc("misses", 1)

	// Choose the LRU victim.
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	lat := uint64(c.cfg.HitLatency)
	if ways[victim].valid && ways[victim].dirty {
		// Write back the victim. Writebacks are buffered in real machines;
		// we charge the lower level's occupancy but not its full latency.
		victimAddr := (ways[victim].tag*len(c.sets) + set) * c.cfg.LineBytes
		c.lower.Access(victimAddr, true)
		c.stats.Inc("writebacks", 1)
	}
	lat += c.lower.Access(addr, false)
	ways[victim] = line{tag: tag, valid: true, dirty: write, used: c.tick}
	return lat
}

// MissRate returns misses / (hits + misses), or 0 when idle.
func (c *Cache) MissRate() float64 {
	h, m := c.stats.Get("hits"), c.stats.Get("misses")
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}

// DRAMBackend adapts a dram.Controller as the lowest Level of a
// hierarchy. Line fills stream LineWords words per fetch.
type DRAMBackend struct {
	Ctl       *dram.Controller
	LineWords int
}

// NewDRAMBackend returns a backend fetching lines of lineBytes from ctl.
func NewDRAMBackend(ctl *dram.Controller, lineBytes int) *DRAMBackend {
	if lineBytes%4 != 0 {
		panic("cache: line size must be a multiple of 4 bytes")
	}
	return &DRAMBackend{Ctl: ctl, LineWords: lineBytes / 4}
}

// Access implements Level by fetching or writing one full line.
func (b *DRAMBackend) Access(addr int, write bool) uint64 {
	return b.Ctl.LineFetch(addr/4, b.LineWords)
}

// LineBytes implements Level.
func (b *DRAMBackend) LineBytes() int { return b.LineWords * 4 }

// Reset rewinds the underlying controller.
func (b *DRAMBackend) Reset() { b.Ctl.Reset() }

// FixedLatency is a trivial Level with constant access time; useful in
// tests and for modeling an idealized next level.
type FixedLatency struct {
	Latency uint64
	Line    int
}

// Access implements Level.
func (f *FixedLatency) Access(addr int, write bool) uint64 { return f.Latency }

// LineBytes implements Level.
func (f *FixedLatency) LineBytes() int {
	if f.Line == 0 {
		return 32
	}
	return f.Line
}
