package cache

import (
	"testing"
	"testing/quick"

	"sigkern/internal/dram"
)

func newL1(t *testing.T) *Cache {
	t.Helper()
	return New(G4L1(), &FixedLatency{Latency: 100})
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{G4L1(), G4L2(), RawTileCache(0)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 8},
		{SizeBytes: 32 << 10, LineBytes: 33, Assoc: 8}, // not power of two
		{SizeBytes: 48 << 10, LineBytes: 32, Assoc: 5}, // set count not pow2
		{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 8, HitLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := newL1(t)
	lat1 := c.Access(0x1000, false)
	if lat1 <= uint64(c.Config().HitLatency) {
		t.Fatalf("cold access latency %d, want > hit latency", lat1)
	}
	lat2 := c.Access(0x1004, false) // same 32-byte line
	if lat2 != uint64(c.Config().HitLatency) {
		t.Fatalf("second access latency %d, want hit latency %d", lat2, c.Config().HitLatency)
	}
	if c.Stats().Get("hits") != 1 || c.Stats().Get("misses") != 1 {
		t.Fatalf("stats: %s", c.Stats())
	}
}

func TestSpatialLocalityWithinLine(t *testing.T) {
	c := newL1(t)
	c.Access(0, false)
	for b := 4; b < 32; b += 4 {
		if lat := c.Access(b, false); lat != uint64(c.Config().HitLatency) {
			t.Fatalf("offset %d missed within a fetched line", b)
		}
	}
	if lat := c.Access(32, false); lat <= uint64(c.Config().HitLatency) {
		t.Fatal("next line did not miss")
	}
}

func TestLRUReplacement(t *testing.T) {
	// Direct-mapped-ish scenario: fill one set beyond associativity.
	cfg := Config{Name: "t", SizeBytes: 1 << 10, LineBytes: 32, Assoc: 2, HitLatency: 1}
	c := New(cfg, &FixedLatency{Latency: 50})
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc) // 16 sets
	setStride := nsets * cfg.LineBytes                   // same-set stride

	c.Access(0*setStride, false) // A
	c.Access(1*setStride, false) // B
	c.Access(0*setStride, false) // touch A; B is now LRU
	c.Access(2*setStride, false) // C evicts B
	if lat := c.Access(0, false); lat != 1 {
		t.Fatal("A was evicted but should have been MRU")
	}
	if lat := c.Access(1*setStride, false); lat == 1 {
		t.Fatal("B hit but should have been evicted (LRU)")
	}
}

func TestWritebackOfDirtyVictim(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 256, LineBytes: 32, Assoc: 1, HitLatency: 1}
	lower := &FixedLatency{Latency: 10}
	c := New(cfg, lower)
	c.Access(0, true)    // dirty line in set 0
	c.Access(256, false) // evicts it -> writeback
	if c.Stats().Get("writebacks") != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Get("writebacks"))
	}
	// Clean eviction: no writeback.
	c.Access(512, false)
	if c.Stats().Get("writebacks") != 1 {
		t.Fatalf("clean eviction caused writeback")
	}
}

func TestTwoLevelHierarchyOverDRAM(t *testing.T) {
	mem := dram.NewController(dram.PPCDRAM())
	l2 := New(G4L2(), NewDRAMBackend(mem, 32))
	l1 := New(G4L1(), l2)

	cold := l1.Access(0, false)
	hitL1 := l1.Access(4, false)
	l1.Reset() // also resets L2 and DRAM via the Reset interface
	if l2.Stats().Get("misses") != 0 {
		t.Fatal("Reset did not propagate to L2")
	}
	if cold <= hitL1 {
		t.Fatalf("cold %d not slower than L1 hit %d", cold, hitL1)
	}
	// After reset, walk a range larger than L1 but inside L2: second pass
	// should hit in L2 (latency between L1 hit and DRAM).
	span := 64 << 10 // 64 KB: 2x L1, 1/4 of L2
	for a := 0; a < span; a += 32 {
		l1.Access(a, false)
	}
	lat := l1.Access(0, false) // L1 evicted, L2 holds it
	if lat <= uint64(G4L1().HitLatency) {
		t.Fatal("expected L1 miss after capacity eviction")
	}
	if lat > 2*uint64(G4L2().HitLatency)+uint64(G4L1().HitLatency) {
		t.Fatalf("expected L2 hit, got DRAM-like latency %d", lat)
	}
}

func TestStridedColumnWalkThrashes(t *testing.T) {
	// The corner-turn access pattern: walking a column of a 1024x1024
	// row-major int32 matrix touches a new 4 KB-separated line each time.
	// Every access must miss in a 32 KB L1 — this is the behaviour that
	// produces the PPC's 34M-cycle corner turn in the paper.
	c := newL1(t)
	const rowBytes = 4096
	for r := 0; r < 1024; r++ {
		c.Access(r*rowBytes, false)
	}
	if mr := c.MissRate(); mr < 0.99 {
		t.Fatalf("column walk miss rate = %.3f, want ~1.0", mr)
	}
}

func TestSequentialWalkMostlyHits(t *testing.T) {
	c := newL1(t)
	for a := 0; a < 1<<16; a += 4 {
		c.Access(a, false)
	}
	// 1 miss per 8 accesses (32-byte lines, 4-byte words).
	if mr := c.MissRate(); mr > 0.13 {
		t.Fatalf("sequential miss rate = %.3f, want ~0.125", mr)
	}
}

func TestDRAMBackendLineBytes(t *testing.T) {
	mem := dram.NewController(dram.PPCDRAM())
	b := NewDRAMBackend(mem, 64)
	if b.LineBytes() != 64 {
		t.Fatalf("LineBytes = %d", b.LineBytes())
	}
	if lat := b.Access(0, false); lat == 0 {
		t.Fatal("DRAM access free")
	}
}

func TestNewPanicsOnNilLower(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil lower) did not panic")
		}
	}()
	New(G4L1(), nil)
}

// Property: hits + misses == number of accesses, and re-accessing the
// same address immediately always hits.
func TestAccessAccountingProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(G4L1(), &FixedLatency{Latency: 100})
		n := uint64(0)
		for _, a := range addrs {
			c.Access(int(a%1<<24), false)
			n++
			if lat := c.Access(int(a%1<<24), false); lat != uint64(c.Config().HitLatency) {
				return false
			}
			n++
		}
		s := c.Stats()
		return s.Get("hits")+s.Get("misses") == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkL1SequentialWalk(b *testing.B) {
	c := New(G4L1(), &FixedLatency{Latency: 100})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for a := 0; a < 1<<16; a += 4 {
			c.Access(a, false)
		}
	}
}
