package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestMemoGetPut(t *testing.T) {
	m := NewMemo[int](4)
	if _, ok := m.Get("a"); ok {
		t.Fatal("hit on empty memo")
	}
	m.Put("a", 1)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("got %d/%v", v, ok)
	}
	m.Put("a", 2) // overwrite
	if v, _ := m.Get("a"); v != 2 {
		t.Fatalf("overwrite lost: %d", v)
	}
	hits, misses := m.Counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d", hits, misses)
	}
	if hr := m.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate %v", hr)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := NewMemo[string](2)
	m.Put("a", "A")
	m.Put("b", "B")
	m.Get("a") // make b the LRU entry
	m.Put("c", "C")
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	if _, ok := m.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := m.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := m.Get("c"); !ok {
		t.Fatal("new entry c missing")
	}
}

func TestMemoDefaultCapacity(t *testing.T) {
	m := NewMemo[int](0)
	for i := 0; i < 100; i++ {
		m.Put(fmt.Sprintf("k%d", i), i)
	}
	if m.Len() != 64 {
		t.Fatalf("default capacity: len = %d, want 64", m.Len())
	}
}

// TestMemoConcurrent exercises the memo from many goroutines; under
// -race this is the concurrency-safety check the hardware Cache type
// explicitly does not make.
func TestMemoConcurrent(t *testing.T) {
	m := NewMemo[uint64](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%40)
				if v, ok := m.Get(key); ok && v != uint64(i%40) {
					t.Errorf("key %s holds %d", key, v)
				}
				m.Put(key, uint64(i%40))
			}
		}(g)
	}
	wg.Wait()
}

func TestMemoShardCount(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1}, {2, 1}, {64, 1}, {127, 1},
		{128, 2}, {256, 4}, {512, 8}, {1024, 16},
		{4096, 16}, // capped at maxMemoShards
	}
	for _, c := range cases {
		if got := NewMemo[int](c.capacity).ShardCount(); got != c.want {
			t.Errorf("capacity %d: %d shards, want %d", c.capacity, got, c.want)
		}
	}
}

// TestMemoShardedCapacity proves sharding preserves the total bound:
// per-shard LRU eviction may reorder victims, but the table never holds
// more than capacity entries, and heavily reused keys survive.
func TestMemoShardedCapacity(t *testing.T) {
	const capacity = 256
	m := NewMemo[int](capacity)
	if m.ShardCount() < 2 {
		t.Fatalf("want a sharded table, got %d shard(s)", m.ShardCount())
	}
	for i := 0; i < 4*capacity; i++ {
		m.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := m.Len(); n > capacity {
		t.Fatalf("len %d exceeds capacity %d", n, capacity)
	}
	// Every shard fills to its own bound, so the aggregate sits near
	// capacity (exact when keys spread; allow the hash some slack).
	if n := m.Len(); n < capacity/2 {
		t.Fatalf("len %d, want near %d", n, capacity)
	}
}

// TestMemoShardedEviction checks per-shard LRU: a key probed right
// before its shard overflows outlives colder keys in the same shard.
func TestMemoShardedEviction(t *testing.T) {
	m := NewMemo[int](128)
	keys := make([]string, 0, 512)
	for i := 0; i < 512; i++ {
		keys = append(keys, fmt.Sprintf("k%d", i))
	}
	for i, k := range keys[:64] {
		m.Put(k, i)
	}
	hot := keys[0]
	for i, k := range keys[64:] {
		m.Get(hot) // refresh recency every step
		m.Put(k, 64+i)
	}
	if _, ok := m.Peek(hot); !ok {
		t.Fatal("constantly refreshed key was evicted")
	}
}

// TestMemoShardedConcurrent hammers a multi-shard memo from many
// goroutines — under -race this is the check that per-shard locking
// still covers every path (Get/Put/Peek/Entries/Counters/Len).
func TestMemoShardedConcurrent(t *testing.T) {
	m := NewMemo[uint64](1024)
	if m.ShardCount() < 2 {
		t.Fatalf("want a sharded table, got %d shard(s)", m.ShardCount())
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%200)
				if v, ok := m.Get(key); ok && v != uint64(i%200) {
					t.Errorf("key %s holds %d", key, v)
				}
				m.Put(key, uint64(i%200))
				switch i % 100 {
				case 17:
					m.Entries()
				case 53:
					m.Counters()
				case 89:
					m.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if hits, misses := m.Counters(); hits+misses != 16*500 {
		t.Fatalf("counters %d+%d, want %d probes", hits, misses, 16*500)
	}
}

// TestMemoShardedCorruptor proves SetCorruptor reaches every shard:
// keys hash across all of them, and each corrupted Get serves the
// damaged value while Peek still sees the truth.
func TestMemoShardedCorruptor(t *testing.T) {
	m := NewMemo[int](1024)
	for i := 0; i < 64; i++ {
		m.Put(fmt.Sprintf("k%d", i), i)
	}
	m.SetCorruptor(func(key string, v int) (int, bool) { return -v, true })
	for i := 1; i < 64; i++ {
		key := fmt.Sprintf("k%d", i)
		if v, _ := m.Get(key); v != -i {
			t.Fatalf("corruptor missed shard holding %s: got %d", key, v)
		}
		if v, _ := m.Peek(key); v != i {
			t.Fatalf("corruptor damaged stored entry %s: %d", key, v)
		}
	}
	m.SetCorruptor(nil)
	if v, _ := m.Get("k7"); v != 7 {
		t.Fatalf("corruptor removal missed a shard: %d", v)
	}
}

func TestMemoEntries(t *testing.T) {
	m := NewMemo[int](4)
	m.Put("a", 1)
	m.Put("b", 2)
	hits, misses := m.Counters()
	got := m.Entries()
	if len(got) != 2 || got["a"] != 1 || got["b"] != 2 {
		t.Fatalf("entries = %v", got)
	}
	// Entries is a copy and touches no statistics.
	got["a"] = 99
	if v, _ := m.Peek("a"); v != 1 {
		t.Fatalf("Entries aliases storage: %d", v)
	}
	if h2, m2 := m.Counters(); h2 != hits || m2 != misses {
		t.Fatal("Entries moved the hit/miss counters")
	}
}
