package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestMemoGetPut(t *testing.T) {
	m := NewMemo[int](4)
	if _, ok := m.Get("a"); ok {
		t.Fatal("hit on empty memo")
	}
	m.Put("a", 1)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("got %d/%v", v, ok)
	}
	m.Put("a", 2) // overwrite
	if v, _ := m.Get("a"); v != 2 {
		t.Fatalf("overwrite lost: %d", v)
	}
	hits, misses := m.Counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d", hits, misses)
	}
	if hr := m.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate %v", hr)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := NewMemo[string](2)
	m.Put("a", "A")
	m.Put("b", "B")
	m.Get("a") // make b the LRU entry
	m.Put("c", "C")
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	if _, ok := m.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := m.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := m.Get("c"); !ok {
		t.Fatal("new entry c missing")
	}
}

func TestMemoDefaultCapacity(t *testing.T) {
	m := NewMemo[int](0)
	for i := 0; i < 100; i++ {
		m.Put(fmt.Sprintf("k%d", i), i)
	}
	if m.Len() != 64 {
		t.Fatalf("default capacity: len = %d, want 64", m.Len())
	}
}

// TestMemoConcurrent exercises the memo from many goroutines; under
// -race this is the concurrency-safety check the hardware Cache type
// explicitly does not make.
func TestMemoConcurrent(t *testing.T) {
	m := NewMemo[uint64](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%40)
				if v, ok := m.Get(key); ok && v != uint64(i%40) {
					t.Errorf("key %s holds %d", key, v)
				}
				m.Put(key, uint64(i%40))
			}
		}(g)
	}
	wg.Wait()
}

func TestMemoEntries(t *testing.T) {
	m := NewMemo[int](4)
	m.Put("a", 1)
	m.Put("b", 2)
	hits, misses := m.Counters()
	got := m.Entries()
	if len(got) != 2 || got["a"] != 1 || got["b"] != 2 {
		t.Fatalf("entries = %v", got)
	}
	// Entries is a copy and touches no statistics.
	got["a"] = 99
	if v, _ := m.Peek("a"); v != 1 {
		t.Fatalf("Entries aliases storage: %d", v)
	}
	if h2, m2 := m.Counters(); h2 != hits || m2 != misses {
		t.Fatal("Entries moved the hit/miss counters")
	}
}
