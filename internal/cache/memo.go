package cache

import "sync"

// Memo is a bounded, concurrency-safe memoization table with LRU
// eviction — the software analogue of the hardware caches this package
// simulates, reused by the simulation service to avoid re-running a
// simulation whose exact job spec has been seen before. Keys are
// canonical strings (the service hashes job specs); values are whatever
// the caller stores (simulation results).
//
// Unlike Cache, Memo is safe for concurrent use: the service's worker
// pool probes and fills it from many goroutines.
type Memo[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*memoEntry[V]
	tick     uint64
	hits     uint64
	misses   uint64
	// corrupt, when set, may damage values on the Get path — the
	// fault-injection hook chaos runs use to prove the service's
	// determinism guard catches a lying cache. See SetCorruptor.
	corrupt func(key string, value V) (V, bool)
}

type memoEntry[V any] struct {
	value V
	used  uint64 // LRU timestamp, same scheme as Cache lines
}

// NewMemo returns a memo table holding at most capacity entries; a
// non-positive capacity gets a small default.
func NewMemo[V any](capacity int) *Memo[V] {
	if capacity <= 0 {
		capacity = 64
	}
	return &Memo[V]{
		capacity: capacity,
		entries:  make(map[string]*memoEntry[V]),
	}
}

// Get returns the memoized value for key and whether it was present,
// updating hit/miss statistics and recency. When a corruptor is
// installed (fault injection), the returned value may be damaged; the
// stored entry is never modified, so Peek still sees the truth.
func (m *Memo[V]) Get(key string) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	if e, ok := m.entries[key]; ok {
		e.used = m.tick
		m.hits++
		if m.corrupt != nil {
			if v, corrupted := m.corrupt(key, e.value); corrupted {
				return v, true
			}
		}
		return e.value, true
	}
	m.misses++
	var zero V
	return zero, false
}

// Peek returns the stored value for key without touching statistics,
// recency, or the corruption hook — the read the service's determinism
// guard compares served results against.
func (m *Memo[V]) Peek(key string) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[key]; ok {
		return e.value, true
	}
	var zero V
	return zero, false
}

// SetCorruptor installs (or, with nil, removes) a fault-injection hook
// consulted on every Get: when it reports true, its return value is
// served in place of the stored one. Production code never installs
// one; chaos runs use it to model a corrupted cache line.
func (m *Memo[V]) SetCorruptor(f func(key string, value V) (V, bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.corrupt = f
}

// Put stores value under key, evicting the least recently used entry
// when the table is full.
func (m *Memo[V]) Put(key string, value V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	if e, ok := m.entries[key]; ok {
		e.value = value
		e.used = m.tick
		return
	}
	if len(m.entries) >= m.capacity {
		var victim string
		var oldest uint64
		first := true
		for k, e := range m.entries {
			if first || e.used < oldest {
				victim, oldest, first = k, e.used, false
			}
		}
		delete(m.entries, victim)
	}
	m.entries[key] = &memoEntry[V]{value: value, used: m.tick}
}

// Entries returns a copy of the table's current contents, keyed as
// stored. The simulation service's durability layer serializes this
// into its journal snapshot so memoized results survive a restart;
// reading it touches neither statistics nor recency.
func (m *Memo[V]) Entries() map[string]V {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]V, len(m.entries))
	for k, e := range m.entries {
		out[k] = e.value
	}
	return out
}

// Len returns the number of memoized entries.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// HitRate returns hits / (hits + misses), or 0 when the table has never
// been probed.
func (m *Memo[V]) HitRate() float64 {
	h, mi := m.Counters()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// Counters returns the cumulative hit and miss counts.
func (m *Memo[V]) Counters() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}
