package cache

import (
	"hash/maphash"
	"sync"
)

// Sharding bounds: a memo splits into power-of-two shards only while
// each shard keeps at least minShardCapacity entries of its own, so
// small tables (including the 64-entry default) stay a single shard
// with exact global LRU order, while service-sized tables (1024+)
// fan out across up to maxMemoShards independently locked shards.
const (
	minShardCapacity = 64
	maxMemoShards    = 16
)

// Memo is a bounded, concurrency-safe memoization table with LRU
// eviction — the software analogue of the hardware caches this package
// simulates, reused by the simulation service to avoid re-running a
// simulation whose exact job spec has been seen before. Keys are
// canonical strings (the service hashes job specs); values are whatever
// the caller stores (simulation results).
//
// Unlike Cache, Memo is safe for concurrent use: the service's worker
// pool probes and fills it from many goroutines. To keep those probes
// from serializing on one lock, the table is split into power-of-two
// shards selected by a maphash of the key; each shard holds its own
// mutex, map, and LRU clock. Eviction is LRU within a shard (an
// approximation of global LRU, exact when the table is small enough
// for a single shard), and statistics aggregate across shards.
type Memo[V any] struct {
	seed   maphash.Seed
	shards []memoShard[V]
	mask   uint64
}

type memoShard[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*memoEntry[V]
	tick     uint64
	hits     uint64
	misses   uint64
	// corrupt, when set, may damage values on the Get path — the
	// fault-injection hook chaos runs use to prove the service's
	// determinism guard catches a lying cache. See SetCorruptor.
	corrupt func(key string, value V) (V, bool)

	// Pad shards out to their own cache lines so two shards' mutexes
	// never share one and ping-pong under contention.
	_ [64]byte
}

type memoEntry[V any] struct {
	value V
	used  uint64 // LRU timestamp, same scheme as Cache lines
}

// shardCountFor picks the largest power-of-two shard count (capped at
// maxMemoShards) that still leaves every shard minShardCapacity slots.
func shardCountFor(capacity int) int {
	n := 1
	for n < maxMemoShards && capacity/(n*2) >= minShardCapacity {
		n *= 2
	}
	return n
}

// NewMemo returns a memo table holding at most capacity entries; a
// non-positive capacity gets a small default.
func NewMemo[V any](capacity int) *Memo[V] {
	if capacity <= 0 {
		capacity = 64
	}
	n := shardCountFor(capacity)
	m := &Memo[V]{
		seed:   maphash.MakeSeed(),
		shards: make([]memoShard[V], n),
		mask:   uint64(n - 1),
	}
	for i := range m.shards {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		m.shards[i] = memoShard[V]{
			capacity: c,
			entries:  make(map[string]*memoEntry[V]),
		}
	}
	return m
}

// shard routes a key to its shard by maphash.
func (m *Memo[V]) shard(key string) *memoShard[V] {
	if m.mask == 0 {
		return &m.shards[0]
	}
	return &m.shards[maphash.String(m.seed, key)&m.mask]
}

// ShardCount reports how many independently locked shards the table
// uses (1 for small capacities, where LRU order is exact and global).
func (m *Memo[V]) ShardCount() int { return len(m.shards) }

// Get returns the memoized value for key and whether it was present,
// updating hit/miss statistics and recency. When a corruptor is
// installed (fault injection), the returned value may be damaged; the
// stored entry is never modified, so Peek still sees the truth.
func (m *Memo[V]) Get(key string) (V, bool) {
	s := m.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	if e, ok := s.entries[key]; ok {
		e.used = s.tick
		s.hits++
		if s.corrupt != nil {
			if v, corrupted := s.corrupt(key, e.value); corrupted {
				return v, true
			}
		}
		return e.value, true
	}
	s.misses++
	var zero V
	return zero, false
}

// Peek returns the stored value for key without touching statistics,
// recency, or the corruption hook — the read the service's determinism
// guard compares served results against.
func (m *Memo[V]) Peek(key string) (V, bool) {
	s := m.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		return e.value, true
	}
	var zero V
	return zero, false
}

// SetCorruptor installs (or, with nil, removes) a fault-injection hook
// consulted on every Get: when it reports true, its return value is
// served in place of the stored one. Production code never installs
// one; chaos runs use it to model a corrupted cache line.
func (m *Memo[V]) SetCorruptor(f func(key string, value V) (V, bool)) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		s.corrupt = f
		s.mu.Unlock()
	}
}

// Put stores value under key, evicting the least recently used entry
// in the key's shard when that shard is full.
func (m *Memo[V]) Put(key string, value V) {
	s := m.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	if e, ok := s.entries[key]; ok {
		e.value = value
		e.used = s.tick
		return
	}
	if len(s.entries) >= s.capacity {
		var victim string
		var oldest uint64
		first := true
		for k, e := range s.entries {
			if first || e.used < oldest {
				victim, oldest, first = k, e.used, false
			}
		}
		delete(s.entries, victim)
	}
	s.entries[key] = &memoEntry[V]{value: value, used: s.tick}
}

// Entries returns a copy of the table's current contents, keyed as
// stored. The simulation service's durability layer serializes this
// into its journal snapshot so memoized results survive a restart;
// reading it touches neither statistics nor recency.
func (m *Memo[V]) Entries() map[string]V {
	out := make(map[string]V, m.Len())
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			out[k] = e.value
		}
		s.mu.Unlock()
	}
	return out
}

// Len returns the number of memoized entries.
func (m *Memo[V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// HitRate returns hits / (hits + misses), or 0 when the table has never
// been probed.
func (m *Memo[V]) HitRate() float64 {
	h, mi := m.Counters()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// Counters returns the cumulative hit and miss counts, aggregated
// across shards.
func (m *Memo[V]) Counters() (hits, misses uint64) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}
