// Package rawsim models the MIT Raw tiled processor: sixteen single-issue
// MIPS-style tiles on a 4x4 mesh, each with local SRAM and a switch
// processor on the static scalar-operand network, with DRAM at the
// peripheral network ports.
//
// The model captures the properties the paper's analysis turns on:
//
//   - issue-rate-limited corner turn (Section 4.2: "16 instructions per
//     cycle are executed on the Raw tiles, and the static network and
//     DRAM ports are not a bottleneck");
//   - cache-mode (MIMD) execution for CSLC with misses served over the
//     dynamic network (Section 4.3: "less than 10% of the execution time
//     is spent on memory stalls", "about 26% of the cycles ... are
//     consumed by load and store instructions");
//   - load imbalance when 73 data sets land on 16 tiles (Section 4.3:
//     "some tiles processed five sets while others processed four ...
//     about 8% of CPU cycles are idle"), and the paper's perfect-balance
//     extrapolation;
//   - stream-mode execution for beam steering where tiles operate on
//     data directly from the static network, eliminating loads and
//     stores entirely (Section 4.4).
//
// Each tile executes a program of segments (compute instructions, local
// memory accesses, port streams, cache fills); tiles share the mesh and
// the port DRAMs through reservation state.
package rawsim

import (
	"fmt"

	"sigkern/internal/cache"
	"sigkern/internal/core"
	"sigkern/internal/dram"
	"sigkern/internal/noc"
	"sigkern/internal/sim"
	"sigkern/internal/sram"
)

// Config parameterizes the machine model.
type Config struct {
	Name     string
	ClockMHz float64
	// Mesh is the tile interconnect (4x4 on the Raw prototype).
	Mesh noc.Config
	// TileMem is each tile's data SRAM.
	TileMem sram.Config
	// DRAM configures the memory at each peripheral port.
	DRAM dram.Config
	// CacheLineWords is the line size used in cache (MIMD) mode.
	CacheLineWords int
	// LoopOverheadPerRow is the per-row address/loop instruction count of
	// streaming loops (the corner turn's ~11% overhead).
	LoopOverheadPerRow int
}

// DefaultConfig returns the model of the chip described in the paper.
func DefaultConfig() Config {
	return Config{
		Name:               "Raw",
		ClockMHz:           300,
		Mesh:               noc.RawMesh(),
		TileMem:            sram.RawTileMemory(0),
		DRAM:               dram.RawPort(0),
		CacheLineWords:     8,
		LoopOverheadPerRow: 16,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Mesh.Validate(); err != nil {
		return err
	}
	if err := c.TileMem.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.CacheLineWords <= 0 {
		return fmt.Errorf("rawsim: cache line %d words", c.CacheLineWords)
	}
	if c.LoopOverheadPerRow < 0 {
		return fmt.Errorf("rawsim: negative loop overhead")
	}
	return nil
}

// Machine is one Raw instance. It is not safe for concurrent use.
type Machine struct {
	cfg        Config
	mesh       *noc.Mesh
	ports      []*dram.Controller
	portOfTile []int

	tileClock []uint64
	portFree  []uint64
	tileBusy  []sim.Breakdown
	stats     sim.Stats
}

// New returns a machine for cfg, panicking on invalid configuration.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{cfg: cfg, mesh: noc.NewMesh(cfg.Mesh)}
	for p := 0; p < m.mesh.PortCount(); p++ {
		d := cfg.DRAM
		d.Name = fmt.Sprintf("%s-port%d", cfg.Name, p)
		m.ports = append(m.ports, dram.NewController(d))
	}
	m.portOfTile = assignPorts(m.mesh)
	m.reset()
	return m
}

// Name implements core.Machine.
func (m *Machine) Name() string { return m.cfg.Name }

// Params implements core.Machine with the paper's Table 2 row.
func (m *Machine) Params() core.Params {
	return core.Params{
		ClockMHz:    m.cfg.ClockMHz,
		ALUs:        m.mesh.Tiles(),
		PeakGFLOPS:  4.64,
		Description: "16-tile mesh with static scalar-operand network",
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Tiles returns the tile count.
func (m *Machine) Tiles() int { return m.mesh.Tiles() }

// Reset implements core.Resettable: it rewinds every tile clock, mesh
// link, and port timeline so the instance can be reused across jobs
// with bit-identical cycle counts. Every kernel entry point performs
// the same rewind on entry.
func (m *Machine) Reset() { m.reset() }

// reset rewinds all timelines between kernel runs.
func (m *Machine) reset() {
	n := m.mesh.Tiles()
	m.tileClock = make([]uint64, n)
	m.tileBusy = make([]sim.Breakdown, n)
	m.portFree = make([]uint64, m.mesh.PortCount())
	m.mesh.Reset()
	for _, p := range m.ports {
		p.Reset()
	}
	m.stats = sim.Stats{}
}

// raw4x4Ports maps each tile of the 4x4 chip to a peripheral port so
// that every boundary tile attaches to its own port directly (no mesh
// links used) and only the four interior tiles route a couple of hops —
// the paper's corner-turn algorithm "was developed ... to avoid
// bottlenecks in the static networks and data ports".
var raw4x4Ports = [16]int{
	0, 1, 2, 3, // row 0: top ports attach directly
	14, 15, 4, 5, // tile4 left, tiles 5-6 interior via corners, tile7 right
	13, 12, 7, 6, // tile8 left, tiles 9-10 interior, tile11 right
	11, 10, 9, 8, // row 3: bottom ports attach directly
}

// assignPorts computes a balanced nearest-port assignment for arbitrary
// mesh shapes (the sweep tool explores 2x2 through 8x8): every port
// serves at most ceil(tiles/ports) tiles, and each tile picks the
// closest attachment among the least-loaded ports.
func assignPorts(mesh *noc.Mesh) []int {
	tiles := mesh.Tiles()
	ports := mesh.PortCount()
	if tiles == 16 && ports == 16 {
		out := make([]int, 16)
		copy(out, raw4x4Ports[:])
		return out
	}
	maxPerPort := (tiles + ports - 1) / ports
	load := make([]int, ports)
	out := make([]int, tiles)
	for t := 0; t < tiles; t++ {
		best, bestKey := -1, 0
		for p := 0; p < ports; p++ {
			if load[p] >= maxPerPort {
				continue
			}
			// Balance first, then proximity.
			key := load[p]*1000 + mesh.Hops(t, mesh.PortTile(p))
			if best == -1 || key < bestKey {
				best, bestKey = p, key
			}
		}
		out[t] = best
		load[best]++
	}
	return out
}

// tilePort returns the peripheral port assigned to a tile.
func (m *Machine) tilePort(tile int) int {
	return m.portOfTile[tile]
}

// compute advances a tile by n single-issue ALU instructions.
func (m *Machine) compute(tile int, n int, category string) {
	m.tileClock[tile] += uint64(n)
	m.tileBusy[tile].Add(category, uint64(n))
	m.stats.Inc("instructions", uint64(n))
}

// localMem advances a tile by n local-SRAM load/store instructions
// (single cycle each on Raw).
func (m *Machine) localMem(tile int, n int) {
	m.tileClock[tile] += uint64(n)
	m.tileBusy[tile].Add("load-store", uint64(n))
	m.stats.Inc("instructions", uint64(n))
	m.stats.Inc("local_accesses", uint64(n))
}

// portIn streams words from the tile's DRAM port over the static network
// into the tile. If storeInstrs is true the tile spends one store
// instruction per word (staging into local memory); otherwise the words
// are consumed directly from the network as register operands and the
// tile only stalls if data arrives slower than it computes.
func (m *Machine) portIn(tile, words int, storeInstrs bool) {
	if words == 0 {
		return
	}
	port := m.tilePort(tile)
	ctl := m.ports[port]
	start := m.tileClock[tile]
	if m.portFree[port] > start {
		start = m.portFree[port]
	}
	ctl.SyncTo(start)
	sr := ctl.Stream(dram.Request{Stride: 1, Count: words})
	portDone := start + sr.Cycles
	m.portFree[port] = portDone
	arrival := m.mesh.SendStatic(m.mesh.PortTile(port), tile, words, start)
	finish := arrival
	instrDone := m.tileClock[tile]
	if storeInstrs {
		instrDone += uint64(words)
		m.tileBusy[tile].Add("load-store", uint64(words))
		m.stats.Inc("instructions", uint64(words))
	}
	if instrDone > finish {
		finish = instrDone
	}
	if finish > instrDone {
		m.tileBusy[tile].Add("net-wait", finish-instrDone)
	}
	if finish > m.tileClock[tile] {
		m.tileClock[tile] = finish
	}
	m.stats.Inc("port_words_in", uint64(words))
}

// portOut streams words from the tile to its DRAM port. If loadInstrs is
// true the tile spends one load instruction per word reading local
// memory onto the network.
func (m *Machine) portOut(tile, words int, loadInstrs bool) {
	if words == 0 {
		return
	}
	port := m.tilePort(tile)
	start := m.tileClock[tile]
	if loadInstrs {
		m.tileClock[tile] += uint64(words)
		m.tileBusy[tile].Add("load-store", uint64(words))
		m.stats.Inc("instructions", uint64(words))
	}
	m.mesh.SendStatic(tile, m.mesh.PortTile(port), words, start)
	ctl := m.ports[port]
	// The DRAM write streams as words arrive: it begins one network
	// latency after the tile starts sending, not after the last word.
	wstart := start + m.mesh.StaticLatency(tile, m.mesh.PortTile(port))
	if m.portFree[port] > wstart {
		wstart = m.portFree[port]
	}
	ctl.SyncTo(wstart)
	sr := ctl.Stream(dram.Request{Stride: 1, Count: words, Write: true})
	m.portFree[port] = wstart + sr.Cycles
	m.stats.Inc("port_words_out", uint64(words))
}

// cacheFill charges a tile for line cache misses served over the dynamic
// network: a request packet to the port, a DRAM line fetch, and the line
// returned as a packet. The tile stalls for the full round trip (the
// paper notes a streaming DMA overlap would have hidden most of this).
func (m *Machine) cacheFill(tile, lines int) {
	port := m.tilePort(tile)
	portTile := m.mesh.PortTile(port)
	for i := 0; i < lines; i++ {
		t := m.tileClock[tile]
		req := m.mesh.SendPacket(tile, portTile, 1, t)
		ctl := m.ports[port]
		ctl.SyncTo(req)
		lat := ctl.LineFetch(0, m.cfg.CacheLineWords)
		resp := m.mesh.SendPacket(portTile, tile, m.cfg.CacheLineWords, req+lat)
		stall := resp - t
		m.tileClock[tile] += stall
		m.tileBusy[tile].Add("cache-stall", stall)
	}
	m.stats.Inc("cache_misses", uint64(lines))
}

// finish assembles a core.Result: total cycles are the slowest tile's
// clock; the breakdown averages the per-tile categories and attributes
// the idle tail of faster tiles to load imbalance.
func (m *Machine) finish(kernel core.KernelID, ops, words uint64) core.Result {
	var total uint64
	for _, c := range m.tileClock {
		if c > total {
			total = c
		}
	}
	b := sim.Breakdown{}
	var idle uint64
	for t, c := range m.tileClock {
		b.Merge(m.tileBusy[t])
		idle += total - c
	}
	// Average the per-tile categories so fractions are per-tile shares.
	b.Scale(1, uint64(m.mesh.Tiles()))
	b.Add("imbalance-idle", idle/uint64(m.mesh.Tiles()))
	return core.Result{
		Machine:   m.cfg.Name,
		Kernel:    kernel,
		Cycles:    total,
		Breakdown: b,
		Stats:     m.stats,
		Ops:       ops,
		Words:     words,
		Verified:  true,
	}
}

// TileUtilization reports, for the most recent kernel run, each tile's
// final clock and cycle breakdown — the per-tile view behind the
// aggregate result (useful for spotting load imbalance).
func (m *Machine) TileUtilization() []struct {
	Tile      int
	Cycles    uint64
	Breakdown sim.Breakdown
} {
	out := make([]struct {
		Tile      int
		Cycles    uint64
		Breakdown sim.Breakdown
	}, m.mesh.Tiles())
	for t := range out {
		out[t].Tile = t
		out[t].Cycles = m.tileClock[t]
		out[t].Breakdown = m.tileBusy[t].Clone()
	}
	return out
}

// cacheModelFor builds the tile-local cache simulator used by unit tests
// and the MIMD kernels' miss estimation.
func (m *Machine) cacheModelFor(tile int) *cache.Cache {
	ctl := dram.NewController(m.cfg.DRAM)
	return cache.New(cache.RawTileCache(tile), cache.NewDRAMBackend(ctl, m.cfg.CacheLineWords*4))
}
