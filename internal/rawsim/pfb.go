package rawsim

import (
	"sigkern/internal/core"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/pfb"
)

// RunPFB implements the extension channelizer in the data-parallel MIMD
// style of the paper's Raw CSLC: frames distribute round-robin across
// tiles, each tile keeps its filter history in local memory, streams the
// frame's new samples in from its port, and computes the FIR and the
// cross-branch FFT locally.
func (m *Machine) RunPFB(w pfb.Workload) (core.Result, error) {
	if err := w.ValidateWorkload(); err != nil {
		return core.Result{}, err
	}
	if err := w.Verify(); err != nil {
		return core.Result{}, err
	}

	m.reset()
	plan, err := fft.NewPlan(w.Channels, fft.Radix2, false)
	if err != nil {
		return core.Result{}, err
	}
	fftCounts := plan.Counts()
	frames := w.FrameCount()
	tiles := m.Tiles()
	newWords := 2 * w.Channels // fresh complex samples per frame
	firFlops := 4 * w.Channels * w.Taps
	firLoads := 2 * w.Channels * w.Taps // history reads (coefficients in registers)
	for f := 0; f < frames; f++ {
		tile := f % tiles
		// Fresh samples stream in; the tile stores them into its history
		// ring.
		m.portIn(tile, newWords, true)
		// FIR over the local history.
		m.compute(tile, firFlops, "compute")
		m.localMem(tile, firLoads)
		m.compute(tile, int(addrLoopFraction*float64(firFlops+firLoads)), "addr-loop")
		// Cross-branch FFT.
		m.compute(tile, int(fftCounts.Flops()), "compute")
		m.localMem(tile, int(fftCounts.Loads+fftCounts.Stores))
		m.compute(tile, int(addrLoopFraction*float64(fftCounts.Flops()+fftCounts.Loads+fftCounts.Stores)), "addr-loop")
		// The frame streams back out.
		m.portOut(tile, newWords, true)
	}
	return m.finish(core.KernelID("pfb"), w.TotalOps(),
		2*uint64(w.Samples)+2*uint64(frames)*uint64(w.Channels)), nil
}
