package rawsim

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/dram"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/testsig"
)

// ctBlock is the corner-turn block edge: 64x64 words (16 KB) fits one
// tile's data memory, per the paper's MIT-designed algorithm.
const ctBlock = 64

// addrLoopFraction approximates the address-arithmetic and loop-control
// instructions of the C-compiled CSLC inner loops as a fraction of the
// productive (flop + load/store) instructions. The paper attributes
// roughly a third of Raw's CSLC cycles to "address and index
// calculations and loop overhead"; 0.31 reproduces that share.
const addrLoopFraction = 0.31

// spillLSPerRadix4Bfly is the extra local loads/stores per radix-4
// butterfly when the working set exceeds the MIPS register file — the
// register spilling that made the paper prefer radix-2 on Raw.
const spillLSPerRadix4Bfly = 16

// RunCornerTurn implements core.Machine with the paper's algorithm:
// 64x64-word blocks staged through tile memories, one load and one store
// instruction per DRAM-to-DRAM word, all main-memory operations
// sequential.
func (m *Machine) RunCornerTurn(spec cornerturn.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := cornerturn.VerifySynthetic(spec.Rows, spec.Cols, func(dst, src *testsig.Matrix) error {
		return cornerturn.TransposeBlocked(dst, src, ctBlock)
	}); err != nil {
		return core.Result{}, fmt.Errorf("rawsim: corner turn: %w", err)
	}

	m.reset()
	// A 64x64 block must fit in tile memory.
	blockBytes := ctBlock * ctBlock * 4
	if blockBytes > m.cfg.TileMem.CapacityBytes {
		return core.Result{}, fmt.Errorf("rawsim: %d-byte block exceeds tile memory", blockBytes)
	}
	blocksR := (spec.Rows + ctBlock - 1) / ctBlock
	blocksC := (spec.Cols + ctBlock - 1) / ctBlock
	nblocks := blocksR * blocksC
	tiles := m.Tiles()
	for b := 0; b < nblocks; b++ {
		tile := b % tiles
		r0 := (b / blocksC) * ctBlock
		c0 := (b % blocksC) * ctBlock
		rows := minInt(ctBlock, spec.Rows-r0)
		cols := minInt(ctBlock, spec.Cols-c0)
		words := rows * cols
		// Inbound: the block streams from DRAM; the tile stores each word
		// into local memory (transposing via the store index).
		m.portIn(tile, words, true)
		// Per-row loop and address arithmetic.
		m.compute(tile, rows*m.cfg.LoopOverheadPerRow, "addr-loop")
		// Outbound: the tile loads each word back onto the network in
		// transposed order; main-memory writes are sequential.
		m.portOut(tile, words, true)
	}
	return m.finish(core.CornerTurn, 2*spec.Words(), 2*spec.Words()), nil
}

// RunCSLC implements core.Machine with the paper's data-parallel MIMD
// implementation: whole sub-band sets per tile, radix-2 FFTs (the radix-4
// variant spills registers; see RunCSLCRadix4), data cached in tile
// memory via dynamic-network misses. As in the paper, the reported
// number extrapolates to perfect load balance; RunCSLCImbalanced reports
// the raw 73-sets-on-16-tiles measurement.
func (m *Machine) RunCSLC(spec cslc.Spec) (core.Result, error) {
	r, err := m.runCSLC(spec, fft.Radix2, false)
	if err != nil {
		return core.Result{}, err
	}
	// Perfect-balance extrapolation: scale the busiest tile's sets down
	// to the average load (the paper: "we report the performance numbers
	// for CSLC on Raw based on an extrapolation that assumes perfect
	// load balancing").
	maxSets := (spec.SubBands + m.Tiles() - 1) / m.Tiles()
	avgNum, avgDen := uint64(spec.SubBands), uint64(m.Tiles())*uint64(maxSets)
	r.Cycles = (r.Cycles*avgNum + avgDen/2) / avgDen
	r.Breakdown.Scale(avgNum, avgDen)
	r.Notes = append(r.Notes,
		fmt.Sprintf("extrapolated to perfect load balance (%d sets on %d tiles)", spec.SubBands, m.Tiles()))
	return r, nil
}

// RunCSLCImbalanced reports the unextrapolated measurement, in which
// tiles with five sets gate the tiles with four (~8% idle).
func (m *Machine) RunCSLCImbalanced(spec cslc.Spec) (core.Result, error) {
	return m.runCSLC(spec, fft.Radix2, false)
}

// RunCSLCRadix4 is the ablation the paper describes: the radix-4 FFT
// does ~1.5x fewer operations but spills registers on the tile
// processor, which costs it more than it saves.
func (m *Machine) RunCSLCRadix4(spec cslc.Spec) (core.Result, error) {
	return m.runCSLC(spec, fft.Radix4, true)
}

// RunCSLCDMA is the paper's other CSLC improvement: "most of this
// stalling could have been eliminated by implementing a streaming DMA
// transfer to the local memory that is overlapped with the computation".
// The data arrives over the static network into local memory while the
// previous set computes, so the cache-fill stalls disappear (the
// load/store and address instructions remain).
func (m *Machine) RunCSLCDMA(spec cslc.Spec) (core.Result, error) {
	spec.Radix = fft.Radix2
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := verifyCSLC(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	fwd, err := fft.NewPlan(spec.FFTSize, spec.Radix, false)
	if err != nil {
		return core.Result{}, err
	}
	inv, err := fft.NewPlan(spec.FFTSize, spec.Radix, true)
	if err != nil {
		return core.Result{}, err
	}
	bandWords := 2 * spec.FFTSize
	tiles := m.Tiles()
	for set := 0; set < spec.SubBands; set++ {
		tile := set % tiles
		// DMA: the set's input streams to local memory via the static
		// network with no tile instructions; the port reservation applies
		// the bandwidth constraint, and with double buffering the
		// transfer overlaps the previous set's compute.
		m.portIn(tile, spec.Channels()*bandWords, false)
		for ch := 0; ch < spec.Channels(); ch++ {
			m.emitFFT(tile, fwd, 0)
		}
		for mc := 0; mc < spec.MainChannels; mc++ {
			w := spec.WeightCountsPerBand()
			m.compute(tile, int(w.Flops()), "compute")
			m.localMem(tile, int(w.Loads+w.Stores))
			m.compute(tile, int(addrLoopFraction*float64(w.Flops()+w.Loads+w.Stores)), "addr-loop")
			m.emitFFT(tile, inv, 0)
			m.portOut(tile, bandWords, false)
		}
	}
	counts, err := spec.TotalCounts()
	if err != nil {
		return core.Result{}, err
	}
	r := m.finish(core.CSLC, counts.Flops(), counts.Loads+counts.Stores)
	r.Notes = append(r.Notes, "streaming-DMA variant: cache-miss stalls overlapped with compute")
	return r, nil
}

func (m *Machine) runCSLC(spec cslc.Spec, radix fft.Radix, spill bool) (core.Result, error) {
	// Raw runs the radix the caller picked; N=128 is not a power of four,
	// so the "radix-4" variant is the mixed radix-4/2 plan, as on the
	// other machines.
	if radix == fft.Radix4 {
		radix = fft.MixedRadix42
	}
	spec.Radix = radix
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := verifyCSLC(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	fwd, err := fft.NewPlan(spec.FFTSize, spec.Radix, false)
	if err != nil {
		return core.Result{}, err
	}
	inv, err := fft.NewPlan(spec.FFTSize, spec.Radix, true)
	if err != nil {
		return core.Result{}, err
	}
	spillLS := 0
	if spill {
		// Butterfly count of the mixed plan.
		bflies := 2*(spec.FFTSize/8)*log4(spec.FFTSize/2) + spec.FFTSize/2
		spillLS = bflies * spillLSPerRadix4Bfly
	}

	bandWords := 2 * spec.FFTSize
	tiles := m.Tiles()
	for set := 0; set < spec.SubBands; set++ {
		tile := set % tiles
		// Input data arrives through the cache: one set's four channels.
		lines := (spec.Channels()*bandWords + m.cfg.CacheLineWords - 1) / m.cfg.CacheLineWords
		m.cacheFill(tile, lines)
		// Forward FFTs.
		for ch := 0; ch < spec.Channels(); ch++ {
			m.emitFFT(tile, fwd, spillLS)
		}
		// Weight application and inverse FFTs per main channel.
		for mc := 0; mc < spec.MainChannels; mc++ {
			w := spec.WeightCountsPerBand()
			m.compute(tile, int(w.Flops()), "compute")
			m.localMem(tile, int(w.Loads+w.Stores))
			m.compute(tile, int(addrLoopFraction*float64(w.Flops()+w.Loads+w.Stores)), "addr-loop")
			m.emitFFT(tile, inv, spillLS)
			// Results write back through the cache (write-allocate).
			outLines := (bandWords + m.cfg.CacheLineWords - 1) / m.cfg.CacheLineWords
			m.cacheFill(tile, outLines)
		}
	}
	counts, err := spec.TotalCounts()
	if err != nil {
		return core.Result{}, err
	}
	return m.finish(core.CSLC, counts.Flops(), counts.Loads+counts.Stores), nil
}

// emitFFT charges one transform's instruction mix to a tile.
func (m *Machine) emitFFT(tile int, plan *fft.Plan, spillLS int) {
	c := plan.Counts()
	m.compute(tile, int(c.Flops()), "compute")
	m.localMem(tile, int(c.Loads+c.Stores)+spillLS)
	m.compute(tile, int(addrLoopFraction*float64(c.Flops()+c.Loads+c.Stores)), "addr-loop")
}

func log4(n int) int {
	l := 0
	for n > 1 {
		n >>= 2
		l++
	}
	return l
}

// RunCSLCStream is the paper's forward-looking variant: the FFT data
// streams over the static network instead of through the cache, so the
// cache-miss stalls disappear and the explicit load/store instructions
// are replaced by network-operand consumption ("A primitive
// implementation result suggests about 70% of FFT performance
// improvement"). The weight stage keeps its register-resident form.
func (m *Machine) RunCSLCStream(spec cslc.Spec) (core.Result, error) {
	spec.Radix = fft.Radix2
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := verifyCSLC(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	fwd, err := fft.NewPlan(spec.FFTSize, spec.Radix, false)
	if err != nil {
		return core.Result{}, err
	}
	inv, err := fft.NewPlan(spec.FFTSize, spec.Radix, true)
	if err != nil {
		return core.Result{}, err
	}
	bandWords := 2 * spec.FFTSize
	tiles := m.Tiles()
	for set := 0; set < spec.SubBands; set++ {
		tile := set % tiles
		for ch := 0; ch < spec.Channels(); ch++ {
			c := fwd.Counts()
			instrs := int(c.Flops()) + int(addrLoopFraction*float64(c.Flops()))
			m.streamCompute(tile, bandWords, 0, instrs)
		}
		for mc := 0; mc < spec.MainChannels; mc++ {
			w := spec.WeightCountsPerBand()
			m.compute(tile, int(w.Flops()), "compute")
			m.compute(tile, int(addrLoopFraction*float64(w.Flops())), "addr-loop")
			c := inv.Counts()
			instrs := int(c.Flops()) + int(addrLoopFraction*float64(c.Flops()))
			m.streamCompute(tile, 0, bandWords, instrs)
		}
	}
	counts, err := spec.TotalCounts()
	if err != nil {
		return core.Result{}, err
	}
	r := m.finish(core.CSLC, counts.Flops(), counts.Loads+counts.Stores)
	r.Notes = append(r.Notes, "stream-interface FFT variant (no loads/stores, cache stalls hidden)")
	return r, nil
}

// RunBeamSteering implements core.Machine in the paper's stream mode:
// the calibration tables stream from the port DRAMs over the static
// network and the tiles operate on the operands directly from the
// network — "loads and stores are not necessary and ALU utilization is
// very high".
func (m *Machine) RunBeamSteering(spec beamsteer.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	tables := testsig.NewBeamTables(spec.Elements, spec.Directions, spec.Dwells, 7)
	out, err := beamsteer.Steer(spec, tables)
	if err != nil {
		return core.Result{}, err
	}
	for _, probe := range [][3]int{{0, 0, 0}, {spec.Dwells - 1, spec.Directions - 1, spec.Elements - 1}} {
		dw, d, e := probe[0], probe[1], probe[2]
		if out[dw][d][e] != beamsteer.SteerOne(spec, tables, dw, d, e) {
			return core.Result{}, fmt.Errorf("rawsim: beam steering output mismatch at %v", probe)
		}
	}

	m.reset()
	tiles := m.Tiles()
	per := spec.Elements / tiles
	extra := spec.Elements % tiles
	for dw := 0; dw < spec.Dwells; dw++ {
		for d := 0; d < spec.Directions; d++ {
			for tile := 0; tile < tiles; tile++ {
				n := per
				if tile < extra {
					n++
				}
				if n == 0 {
					continue
				}
				m.streamCompute(tile, 2*n, n, int(spec.OpsPerOutput())*n)
				m.compute(tile, 8, "addr-loop") // per-beam loop control
			}
		}
	}
	return m.finish(core.BeamSteering,
		spec.Outputs()*spec.OpsPerOutput(), spec.Outputs()*spec.MemPerOutput()), nil
}

// RunBeamSteeringMIMD runs beam steering in the paper's
// "easy-to-program but less efficient MIMD mode, in which data is routed
// to local memories through cache misses" — the mode the paper used for
// CSLC but deliberately avoided for beam steering. Each output costs its
// two table loads and one store as real instructions, plus the cache
// traffic for the tables and output stream.
func (m *Machine) RunBeamSteeringMIMD(spec beamsteer.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	tables := testsig.NewBeamTables(spec.Elements, spec.Directions, spec.Dwells, 7)
	out, err := beamsteer.Steer(spec, tables)
	if err != nil {
		return core.Result{}, err
	}
	if out[0][0][0] != beamsteer.SteerOne(spec, tables, 0, 0, 0) {
		return core.Result{}, fmt.Errorf("rawsim: beam steering output mismatch")
	}

	m.reset()
	tiles := m.Tiles()
	per := spec.Elements / tiles
	extra := spec.Elements % tiles
	for dw := 0; dw < spec.Dwells; dw++ {
		for d := 0; d < spec.Directions; d++ {
			for tile := 0; tile < tiles; tile++ {
				n := per
				if tile < extra {
					n++
				}
				if n == 0 {
					continue
				}
				// Table slices and the output arrive/leave through the
				// cache (first dwell misses; tables then resident, the
				// output stream always write-allocates).
				if dw == 0 && d == 0 {
					lines := (2*n + m.cfg.CacheLineWords - 1) / m.cfg.CacheLineWords
					m.cacheFill(tile, lines)
				}
				outLines := (n + m.cfg.CacheLineWords - 1) / m.cfg.CacheLineWords
				m.cacheFill(tile, outLines)
				// Explicit loads and stores plus the arithmetic.
				m.localMem(tile, 3*n)
				m.compute(tile, int(spec.OpsPerOutput())*n, "compute")
				m.compute(tile, 8, "addr-loop")
			}
		}
	}
	r := m.finish(core.BeamSteering,
		spec.Outputs()*spec.OpsPerOutput(), spec.Outputs()*spec.MemPerOutput())
	r.Notes = append(r.Notes, "MIMD cache mode (the paper's measurement used stream mode)")
	return r, nil
}

// streamCompute runs a stream-mode loop on one tile: inWords arrive from
// the tile's port over the static network, the tile executes instrs ALU
// instructions consuming them as register operands, and outWords flow
// back to the port, all overlapped.
func (m *Machine) streamCompute(tile, inWords, outWords, instrs int) {
	port := m.tilePort(tile)
	ctl := m.ports[port]
	start := m.tileClock[tile]
	if m.portFree[port] > start {
		start = m.portFree[port]
	}
	ctl.SyncTo(start)
	sr := ctl.Stream(dram.Request{Stride: 1, Count: inWords})
	m.portFree[port] = start + sr.Cycles
	arrival := m.mesh.SendStatic(m.mesh.PortTile(port), tile, inWords, start)

	// The tile computes as operands arrive; it finishes no earlier than
	// its own instruction stream and no earlier than the last input plus
	// the final output's worth of work.
	tail := 1
	if outWords > 0 {
		tail = instrs / maxInt(outWords, 1)
	}
	instrDone := m.tileClock[tile] + uint64(instrs)
	computeDone := instrDone
	if lastIn := arrival + uint64(tail); lastIn > computeDone {
		computeDone = lastIn
	}
	m.tileBusy[tile].Add("compute", uint64(instrs))
	if computeDone > instrDone {
		m.tileBusy[tile].Add("net-wait", computeDone-instrDone)
	}
	m.tileClock[tile] = computeDone
	m.stats.Inc("instructions", uint64(instrs))
	m.stats.Inc("port_words_in", uint64(inWords))

	if outWords > 0 {
		// Results stream to the port as they are produced.
		sendStart := computeDone
		if sendStart > uint64(outWords) {
			sendStart -= uint64(outWords)
		}
		m.mesh.SendStatic(tile, m.mesh.PortTile(port), outWords, sendStart)
		wstart := sendStart + m.mesh.StaticLatency(tile, m.mesh.PortTile(port))
		if m.portFree[port] > wstart {
			wstart = m.portFree[port]
		}
		ctl.SyncTo(wstart)
		wr := ctl.Stream(dram.Request{Stride: 1, Count: outWords, Write: true})
		m.portFree[port] = wstart + wr.Cycles
		m.stats.Inc("port_words_out", uint64(outWords))
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// verifyCSLC proves the functional pipeline against the naive-DFT
// reference on the synthetic scene.
func verifyCSLC(spec cslc.Spec) error {
	scene := testsig.DefaultScene(spec.Samples)
	scene.AuxCoupling = scene.AuxCoupling[:spec.AuxChannels]
	channels := scene.Channels(spec.MainChannels)
	w, err := cslc.EstimateWeights(spec, channels)
	if err != nil {
		return err
	}
	out, err := cslc.Run(spec, channels, w)
	if err != nil {
		return err
	}
	probe := []int{0, spec.SubBands / 2, spec.SubBands - 1}
	return cslc.VerifyAgainstNaive(spec, channels, w, out, probe)
}
