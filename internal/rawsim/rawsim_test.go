package rawsim

import (
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
)

var _ core.Machine = (*Machine)(nil)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Mesh.Width = 0 },
		func(c *Config) { c.TileMem.CapacityBytes = 0 },
		func(c *Config) { c.DRAM.Banks = 0 },
		func(c *Config) { c.CacheLineWords = 0 },
		func(c *Config) { c.LoopOverheadPerRow = -1 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestComputeAdvancesOneTileOnly(t *testing.T) {
	m := New(DefaultConfig())
	m.compute(3, 100, "compute")
	if m.tileClock[3] != 100 {
		t.Fatalf("tile 3 clock = %d", m.tileClock[3])
	}
	for i, c := range m.tileClock {
		if i != 3 && c != 0 {
			t.Fatalf("tile %d advanced to %d", i, c)
		}
	}
}

func TestPortInStoreInstrsCostOneCyclePerWord(t *testing.T) {
	m := New(DefaultConfig())
	m.portIn(0, 1000, true)
	// Tile issues 1000 stores; the port streams 1000 words at 1/cycle;
	// these overlap, so the clock lands near 1000 plus network latency.
	if m.tileClock[0] < 1000 || m.tileClock[0] > 1100 {
		t.Fatalf("portIn clock = %d, want ~1000", m.tileClock[0])
	}
}

func TestCacheFillStallsTile(t *testing.T) {
	m := New(DefaultConfig())
	m.cacheFill(5, 10)
	if m.tileClock[5] == 0 {
		t.Fatal("cache fills did not stall the tile")
	}
	perLine := m.tileClock[5] / 10
	// A round trip over the dynamic network plus a DRAM line fetch: tens
	// of cycles.
	if perLine < 20 || perLine > 120 {
		t.Fatalf("per-line fill cost = %d, want 20-120", perLine)
	}
}

func TestCornerTurnCycles(t *testing.T) {
	m := New(DefaultConfig())
	r, err := m.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 146k cycles, issue-rate limited (lower bound 131k).
	if r.Cycles < 131_000 || r.Cycles > 200_000 {
		t.Fatalf("corner turn cycles = %d, want ~146k (131k-200k band)", r.Cycles)
	}
	// "Memory latency is fully hidden": network wait must be a small
	// fraction.
	if f := r.Breakdown.Fraction("net-wait"); f > 0.1 {
		t.Fatalf("net-wait fraction = %.2f, want < 0.1 (%s)", f, r.Breakdown.String())
	}
}

func TestCSLCCyclesAndBreakdown(t *testing.T) {
	m := New(DefaultConfig())
	r, err := m.RunCSLC(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 357k cycles (perfect-balance extrapolation).
	if r.Cycles < 250_000 || r.Cycles > 500_000 {
		t.Fatalf("CSLC cycles = %d, want ~357k (250k-500k band)", r.Cycles)
	}
	if len(r.Notes) == 0 {
		t.Fatal("extrapolated result carries no note")
	}
	// Paper: ~26% of cycles in loads/stores, <10% cache stalls.
	if f := r.Breakdown.Fraction("load-store"); f < 0.18 || f > 0.38 {
		t.Fatalf("load/store fraction = %.2f, want ~0.26 (%s)", f, r.Breakdown.String())
	}
	if f := r.Breakdown.Fraction("cache-stall"); f > 0.12 {
		t.Fatalf("cache-stall fraction = %.2f, want < 0.10 (%s)", f, r.Breakdown.String())
	}
}

func TestCSLCLoadBalanceAblation(t *testing.T) {
	m := New(DefaultConfig())
	bal, err := m.RunCSLC(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	imb, err := m.RunCSLCImbalanced(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	if imb.Cycles <= bal.Cycles {
		t.Fatalf("imbalanced (%d) not slower than balanced (%d)", imb.Cycles, bal.Cycles)
	}
	// Paper: "about 8% of CPU cycles are idle due to load balancing".
	overhead := float64(imb.Cycles-bal.Cycles) / float64(imb.Cycles)
	if overhead < 0.04 || overhead > 0.15 {
		t.Fatalf("imbalance overhead = %.2f, want ~0.08", overhead)
	}
}

func TestCSLCRadix4SpillsAblation(t *testing.T) {
	// Paper: the radix-4 FFT "provided [worse] performance than the
	// radix-2 FFT because of register spilling".
	m := New(DefaultConfig())
	r2, err := m.RunCSLCImbalanced(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := m.RunCSLCRadix4(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cycles <= r2.Cycles {
		t.Fatalf("radix-4 with spills (%d) not slower than radix-2 (%d)", r4.Cycles, r2.Cycles)
	}
}

func TestBeamSteeringCycles(t *testing.T) {
	m := New(DefaultConfig())
	r, err := m.RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 19k cycles, the best of the three architectures, with very
	// high ALU utilization.
	if r.Cycles < 19_000 || r.Cycles > 30_000 {
		t.Fatalf("beam steering cycles = %d, want ~19k (19k-30k band)", r.Cycles)
	}
	if f := r.Breakdown.Fraction("compute"); f < 0.75 {
		t.Fatalf("compute fraction = %.2f, want > 0.75 (%s)", f, r.Breakdown.String())
	}
	// Stream mode: no loads or stores at all.
	if r.Breakdown.Get("load-store") != 0 {
		t.Fatalf("stream-mode beam steering executed loads/stores: %s", r.Breakdown.String())
	}
}

func TestParamsMatchTable2(t *testing.T) {
	p := New(DefaultConfig()).Params()
	if p.ClockMHz != 300 || p.ALUs != 16 || p.PeakGFLOPS != 4.64 {
		t.Fatalf("Table 2 row mismatch: %+v", p)
	}
}

func TestTileCacheModel(t *testing.T) {
	m := New(DefaultConfig())
	c := m.cacheModelFor(0)
	// One sub-band set (4 channels x 1 KB) fits the 32 KB tile cache:
	// after a first pass, a second pass must hit.
	for a := 0; a < 4*1024; a += 4 {
		c.Access(a, false)
	}
	before := c.Stats().Get("misses")
	for a := 0; a < 4*1024; a += 4 {
		c.Access(a, false)
	}
	if c.Stats().Get("misses") != before {
		t.Fatal("second pass over a resident working set missed")
	}
}

func TestTileCountScaling(t *testing.T) {
	// A 2x2 mesh (4 tiles) must be slower on the corner turn than the
	// 4x4 chip: the kernel is issue-rate limited.
	small := DefaultConfig()
	small.Mesh.Width, small.Mesh.Height = 2, 2
	ms := New(small)
	mb := New(DefaultConfig())
	rs, err := ms.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := mb.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rs.Cycles) / float64(rb.Cycles)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("4-tile/16-tile ratio = %.2f, want ~4", ratio)
	}
}

func TestCSLCStreamVariantFaster(t *testing.T) {
	// Paper: streaming the FFT over the static network "suggests about
	// 70% of FFT performance improvement" over the cache-mode version.
	m := New(DefaultConfig())
	mimd, err := m.RunCSLCImbalanced(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := m.RunCSLCStream(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(mimd.Cycles) / float64(stream.Cycles)
	if ratio < 1.4 || ratio > 2.6 {
		t.Fatalf("stream/MIMD speedup = %.2f, want ~1.7 (paper: ~70%% FFT improvement)", ratio)
	}
}

func TestTileUtilizationShowsImbalance(t *testing.T) {
	m := New(DefaultConfig())
	if _, err := m.RunCSLCImbalanced(cslc.PaperSpec(fft.Radix2)); err != nil {
		t.Fatal(err)
	}
	tu := m.TileUtilization()
	if len(tu) != 16 {
		t.Fatalf("%d tiles", len(tu))
	}
	// 73 sets on 16 tiles: tiles 0-8 run five sets, tiles 9-15 four, so
	// a five-set tile must report ~25% more cycles than a four-set tile.
	ratio := float64(tu[0].Cycles) / float64(tu[15].Cycles)
	if ratio < 1.15 || ratio > 1.4 {
		t.Fatalf("5-set/4-set tile cycle ratio = %.2f, want ~1.25", ratio)
	}
	if tu[0].Breakdown.Get("compute") == 0 {
		t.Fatal("per-tile breakdown empty")
	}
}

func TestCSLCDMAEliminatesCacheStalls(t *testing.T) {
	// Paper: "most of this stalling could have been eliminated by
	// implementing a streaming DMA transfer to the local memory that is
	// overlapped with the computation."
	m := New(DefaultConfig())
	cachey, err := m.RunCSLCImbalanced(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	dma, err := m.RunCSLCDMA(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	if dma.Cycles >= cachey.Cycles {
		t.Fatalf("DMA variant (%d) not faster than cache mode (%d)", dma.Cycles, cachey.Cycles)
	}
	if got := dma.Breakdown.Get("cache-stall"); got != 0 {
		t.Fatalf("DMA variant still has %d cache-stall cycles", got)
	}
	// The gain is bounded by the former stall share (~8-10%).
	gain := 1 - float64(dma.Cycles)/float64(cachey.Cycles)
	if gain < 0.03 || gain > 0.20 {
		t.Fatalf("DMA gain = %.0f%%, want ~8%%", gain*100)
	}
}

func TestBeamSteeringStreamVsMIMD(t *testing.T) {
	// The paper reports the stream-mode number and describes the MIMD
	// mode as "easy-to-program but less efficient": the explicit
	// loads/stores and cache traffic must cost noticeably more.
	m := New(DefaultConfig())
	stream, err := m.RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	mimd, err := m.RunBeamSteeringMIMD(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(mimd.Cycles) / float64(stream.Cycles)
	if ratio < 1.3 || ratio > 3.5 {
		t.Fatalf("MIMD/stream ratio = %.2f, want 1.3-3.5 (loads+stores reappear)", ratio)
	}
	if mimd.Breakdown.Get("load-store") == 0 {
		t.Fatal("MIMD mode executed no loads/stores")
	}
}
