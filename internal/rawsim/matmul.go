package rawsim

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/kernels/matmul"
)

// mmBlock is the matmul tile edge on Raw: a 32x32 block keeps three
// operand blocks (A panel, B panel, C accumulator — 4 KB each) inside a
// tile's 32 KB data memory with room for code constants.
const mmBlock = 32

// mmLSPerMAC is the local loads/stores per multiply-add with 4x4
// register blocking: each 16-MAC register tile reloads 4+4 operand words
// (0.5/MAC) and C stays in registers until the k-panel ends.
const mmLSPerMAC = 2 // expressed as numerator over mmLSDen

const mmLSDen = 4

// RunMatMul implements core.MatMulRunner: the block-distributed
// formulation from the Raw literature — each tile owns C blocks, streams
// A and B panels in from its DRAM port, and runs register-blocked MACs
// out of its local memory.
func (m *Machine) RunMatMul(spec matmul.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := matmul.VerifyBlocked(spec); err != nil {
		return core.Result{}, err
	}
	if spec.M%mmBlock != 0 || spec.N%mmBlock != 0 || spec.K%mmBlock != 0 {
		return core.Result{}, fmt.Errorf("rawsim: dimensions must be multiples of %d", mmBlock)
	}

	m.reset()
	// Three blocks must fit in tile memory.
	if need := 3 * mmBlock * mmBlock * 4; need > m.cfg.TileMem.CapacityBytes {
		return core.Result{}, fmt.Errorf("rawsim: %d-byte working set exceeds tile memory", need)
	}
	blocksR := spec.M / mmBlock
	blocksC := spec.N / mmBlock
	panels := spec.K / mmBlock
	tiles := m.Tiles()
	blockWords := mmBlock * mmBlock
	macsPerPanel := mmBlock * mmBlock * mmBlock

	for b := 0; b < blocksR*blocksC; b++ {
		tile := b % tiles
		for kp := 0; kp < panels; kp++ {
			// A and B panels stream in; the tile stores them locally.
			m.portIn(tile, 2*blockWords, true)
			// Register-blocked MACs: two ALU ops per MAC plus the
			// amortized operand reloads and loop control.
			m.compute(tile, 2*macsPerPanel, "compute")
			m.localMem(tile, macsPerPanel*mmLSPerMAC/mmLSDen)
			m.compute(tile, macsPerPanel/16, "addr-loop")
		}
		// The finished C block streams back out.
		m.portOut(tile, blockWords, true)
	}
	words := uint64(blocksR*blocksC) * uint64(panels) * uint64(2*blockWords)
	words += uint64(blocksR*blocksC) * uint64(blockWords)
	return m.finish(core.MatMul, spec.Flops(), words), nil
}
