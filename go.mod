module sigkern

go 1.22
