// Package sigkern reproduces "A Performance Analysis of PIM, Stream
// Processing, and Tiled Processing on Memory-Intensive Signal Processing
// Kernels" (Suh, Kim, Crago, Srinivasan, French; ISCA 2003): functional
// plus cycle-timing models of VIRAM, Imagine, Raw, and a PowerPC
// G4/AltiVec baseline, running the corner-turn, CSLC, and beam-steering
// kernels, with a harness that regenerates the paper's Tables 1-4 and
// Figures 8-9.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured numbers. The benchmark suite
// in bench_test.go regenerates every table and figure:
//
//	go test -bench=Table -benchmem .
//	go test -bench=Figure .
//	go test -bench=Ablation .
package sigkern
