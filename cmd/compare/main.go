// Command compare diffs two study-result CSV files (as written by
// `sigstudy -csv`) and reports per-cell cycle changes — the regression
// check for simulator or configuration changes.
//
// Usage:
//
//	sigstudy -csv before.csv
//	... change something ...
//	sigstudy -csv after.csv
//	compare -threshold 2 before.csv after.csv
//
// The exit status is 1 when any cell moved by more than the threshold
// percentage.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"sigkern/internal/report"
)

func main() {
	threshold := flag.Float64("threshold", 1.0, "flag changes larger than this percentage")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: compare [-threshold pct] before.csv after.csv")
		os.Exit(2)
	}
	changed, err := run(flag.Arg(0), flag.Arg(1), *threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		os.Exit(2)
	}
	if changed {
		os.Exit(1)
	}
}

func run(beforePath, afterPath string, threshold float64) (bool, error) {
	load := func(path string) (map[string]uint64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rows, err := report.ParseStudyCSV(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out := map[string]uint64{}
		for _, r := range rows {
			out[r.Machine+"/"+r.Kernel] = r.Cycles
		}
		return out, nil
	}
	before, err := load(beforePath)
	if err != nil {
		return false, err
	}
	after, err := load(afterPath)
	if err != nil {
		return false, err
	}

	var keys []string
	for k := range before {
		keys = append(keys, k)
	}
	for k := range after {
		if _, ok := before[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	changed := false
	var rows [][]string
	for _, key := range keys {
		b, haveB := before[key]
		a, haveA := after[key]
		switch {
		case !haveA:
			rows = append(rows, []string{key, fmt.Sprintf("%d", b), "-", "removed"})
			changed = true
		case !haveB:
			rows = append(rows, []string{key, "-", fmt.Sprintf("%d", a), "added"})
			changed = true
		default:
			pct := 100 * (float64(a) - float64(b)) / float64(b)
			mark := ""
			if math.Abs(pct) > threshold {
				mark = " CHANGED"
				changed = true
			}
			rows = append(rows, []string{key, fmt.Sprintf("%d", b), fmt.Sprintf("%d", a),
				fmt.Sprintf("%+.2f%%%s", pct, mark)})
		}
	}
	if err := report.Table(os.Stdout, "cycle comparison",
		[]string{"machine/kernel", "before", "after", "delta"}, rows); err != nil {
		return false, err
	}
	return changed, nil
}
