// Command roofline renders the analytic predicted-cycles grid — the
// paper's Table 4, regenerated from the generalized roofline model and
// extended to every kernel with declared metadata — and, unless
// -model-only is set, simulates each cell with a machine implementation
// and reports the per-cell model-vs-simulated error.
//
// Usage:
//
//	roofline                  # full grid with simulated error ratios
//	roofline -model-only      # analytic bounds only (microseconds)
//	roofline -format csv      # raw cycle counts for downstream tooling
//	roofline -format json     # the GET /v1/roofline payload
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sigkern/internal/report"
	"sigkern/internal/svc"
)

func main() {
	modelOnly := flag.Bool("model-only", false, "skip simulation; print analytic bounds only")
	format := flag.String("format", "text", "output format: text, csv, or json")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulations to run in parallel")
	flag.Parse()

	s := svc.NewService(svc.Options{Pool: svc.PoolOptions{Workers: *workers, JobTimeout: 10 * time.Minute}})
	defer s.Close()

	rd, err := s.Roofline(context.Background(), !*modelOnly)
	if err != nil {
		fail(err)
	}
	switch *format {
	case "text":
		err = report.RenderRoofline(os.Stdout, rd.Title, rd.Cells)
	case "csv":
		err = report.RooflineCSV(os.Stdout, rd.Cells)
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		err = enc.Encode(rd)
	default:
		err = fmt.Errorf("unknown format %q (want text, csv, or json)", *format)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "roofline: %v\n", err)
	os.Exit(1)
}
