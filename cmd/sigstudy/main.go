// Command sigstudy runs the full comparative study and regenerates the
// paper's evaluation artifacts: Tables 1-4 and Figures 8-9, plus the
// Section 4 cycle breakdowns.
//
// Usage:
//
//	sigstudy                 # everything
//	sigstudy -table 3        # one table (1-4)
//	sigstudy -figure 8       # one figure (8 or 9)
//	sigstudy -kernel cslc    # one kernel's row across machines
//	sigstudy -csv out.csv    # also dump results as CSV
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/kernels/matmul"
	"sigkern/internal/machines"
	"sigkern/internal/report"
	"sigkern/internal/svc"
)

func main() {
	table := flag.Int("table", 0, "render only this table (1-4)")
	figure := flag.Int("figure", 0, "render only this figure (8 or 9)")
	kernel := flag.String("kernel", "", "render only this kernel's results (ct, cslc, bs)")
	csvPath := flag.String("csv", "", "write results as CSV to this file")
	htmlPath := flag.String("html", "", "write a self-contained HTML report to this file")
	breakdowns := flag.Bool("breakdowns", true, "print per-result cycle breakdowns")
	matrix := flag.Int("matrix", 0, "override the corner-turn matrix edge")
	dwells := flag.Int("dwells", 0, "override the beam-steering dwell count")
	subbands := flag.Int("subbands", 0, "override the CSLC sub-band count")
	configPath := flag.String("config", "", "load machine configurations from this JSON file")
	workloadPath := flag.String("workload", "", "load the kernel workload from this JSON file")
	saveConfig := flag.String("saveconfig", "", "write the default machine configurations to this JSON file and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulations to run in parallel")
	flag.Parse()

	if *saveConfig != "" {
		if err := machines.SaveConfigSet(*saveConfig, machines.DefaultConfigSet()); err != nil {
			fmt.Fprintf(os.Stderr, "sigstudy: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote default machine configurations to %s\n", *saveConfig)
		return
	}
	ms := machines.All()
	factory := svc.MachineFactory(machines.ByName)
	if *configPath != "" {
		set, err := machines.LoadConfigSet(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigstudy: %v\n", err)
			os.Exit(1)
		}
		ms, err = set.Machines()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigstudy: %v\n", err)
			os.Exit(1)
		}
		factory, err = machines.FactoryFromConfigSet(set)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigstudy: %v\n", err)
			os.Exit(1)
		}
	}

	w := core.PaperWorkload()
	if *workloadPath != "" {
		var err error
		w, err = machines.LoadWorkload(*workloadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigstudy: %v\n", err)
			os.Exit(1)
		}
	}
	if *matrix > 0 {
		w.CornerTurn.Rows, w.CornerTurn.Cols = *matrix, *matrix
	}
	if *dwells > 0 {
		w.Beam.Dwells = *dwells
	}
	if *subbands > 0 {
		w.CSLC.SubBands = *subbands
	}
	if err := run(ms, factory, *workers, w, *table, *figure, *kernel, *csvPath, *htmlPath, *breakdowns); err != nil {
		fmt.Fprintf(os.Stderr, "sigstudy: %v\n", err)
		os.Exit(1)
	}
}

func run(ms []core.Machine, factory svc.MachineFactory, workers int, w core.Workload, table, figure int, kernel, csvPath, htmlPath string, breakdowns bool) error {
	fmt.Printf("Running the PIM / stream / tiled processing study (%d workers)...\n", workers)
	// Fan the (machine, kernel) grid out across the service's worker
	// pool; each job runs on a fresh machine instance, so cycle counts
	// are identical to the serial core.RunStudy.
	pool := svc.NewPool(svc.PoolOptions{
		Workers:      workers,
		JobTimeout:   time.Hour,
		MemoCapacity: -1,
	})
	defer pool.Close()
	var names []string
	for _, m := range ms {
		names = append(names, m.Name())
	}
	sr, err := svc.RunStudyBatch(context.Background(), pool, factory, names, w)
	if err != nil {
		return err
	}
	out := os.Stdout
	fmt.Fprintln(out)

	if kernel == "mm" || kernel == "matmul" {
		return renderMatMul()
	}
	if kernel != "" {
		k, err := kernelID(kernel)
		if err != nil {
			return err
		}
		return renderKernel(sr, k)
	}

	renderTable := func(n int) error {
		switch n {
		case 1:
			return report.RenderTable1(out)
		case 2:
			return report.RenderTable2(out, sr.Machines())
		case 3:
			return report.RenderTable3(out, sr)
		case 4:
			return report.RenderTable4(out, sr)
		default:
			return fmt.Errorf("no table %d (want 1-4)", n)
		}
	}
	renderFigure := func(n int) error {
		switch n {
		case 8:
			return report.RenderFigure8(out, sr, machines.Baseline)
		case 9:
			return report.RenderFigure9(out, sr, machines.Baseline)
		default:
			return fmt.Errorf("no figure %d (want 8 or 9)", n)
		}
	}

	switch {
	case table != 0:
		if err := renderTable(table); err != nil {
			return err
		}
	case figure != 0:
		if err := renderFigure(figure); err != nil {
			return err
		}
	default:
		for n := 1; n <= 4; n++ {
			if err := renderTable(n); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		for _, n := range []int{8, 9} {
			if err := renderFigure(n); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		if err := report.RenderGeoMeans(out, sr, machines.Baseline); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if breakdowns {
			if err := report.RenderBreakdowns(out, sr); err != nil {
				return err
			}
		}
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.StudyCSV(f, sr); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", csvPath)
	}
	if htmlPath != "" {
		f, err := os.Create(htmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.HTMLReport(f, sr, machines.Baseline); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", htmlPath)
	}
	return nil
}

func kernelID(s string) (core.KernelID, error) {
	switch s {
	case "ct", "corner-turn", "cornerturn":
		return core.CornerTurn, nil
	case "cslc":
		return core.CSLC, nil
	case "bs", "beam-steering", "beamsteering":
		return core.BeamSteering, nil
	default:
		return "", fmt.Errorf("unknown kernel %q (want ct, cslc, or bs)", s)
	}
}

// renderMatMul runs the extension kernel across machines.
func renderMatMul() error {
	spec := matmul.DefaultSpec()
	var rows [][]string
	for _, m := range machines.All() {
		mr, ok := m.(core.MatMulRunner)
		if !ok {
			continue
		}
		r, err := mr.RunMatMul(spec)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			m.Name(),
			report.KCycles(r.Cycles),
			fmt.Sprintf("%.2f", r.OpsPerCycle()),
			fmt.Sprintf("%.3f ms", r.TimeMS(m.Params().ClockMHz)),
		})
	}
	return report.Table(os.Stdout,
		fmt.Sprintf("Matrix multiply %dx%dx%d (extension kernel; cycles in 10^3)", spec.M, spec.N, spec.K),
		[]string{"Machine", "kcycles", "flops/cycle", "time"}, rows)
}

func renderKernel(sr *core.StudyResults, k core.KernelID) error {
	var rows [][]string
	for _, name := range sr.MachineNames() {
		r, ok := sr.Result(name, k)
		if !ok {
			return fmt.Errorf("missing result %s/%s", name, k)
		}
		rows = append(rows, []string{
			name,
			report.KCycles(r.Cycles),
			fmt.Sprintf("%.2f", r.OpsPerCycle()),
			r.Breakdown.String(),
		})
	}
	return report.Table(os.Stdout, k.Title()+" (cycles in 10^3)",
		[]string{"Machine", "kcycles", "ops/cycle", "breakdown"}, rows)
}
