// Command archinfo prints the architecture descriptions of the four
// machines — the textual equivalent of the paper's Figures 1-3 block
// diagrams plus the Table 2 parameter summary.
package main

import (
	"fmt"
	"os"

	"sigkern/internal/imagine"
	"sigkern/internal/machines"
	"sigkern/internal/ppc"
	"sigkern/internal/rawsim"
	"sigkern/internal/report"
	"sigkern/internal/viram"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "archinfo: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	if err := report.RenderTable2(os.Stdout, machines.All()); err != nil {
		return err
	}
	fmt.Println()

	v := viram.DefaultConfig()
	fmt.Printf(`VIRAM (Figure 1) — processor-in-memory vector chip
  scalar core + 2 vector arithmetic units (FP on ALU0 only)
  %d x 32-bit lanes, MVL %d elements, %d vector registers
  on-chip DRAM: %d banks, %d-word rows, %d words/cycle sequential,
  %d address generators (strided/indexed), crossbar to the vector unit
  TLB: %d entries, %d KB pages

`, v.Lanes, v.MVL, v.VRegs, v.DRAM.Banks, v.DRAM.RowWords,
		v.DRAM.SeqWordsPerCycle, v.DRAM.AddrGens, v.TLBEntries, v.TLBPageBytes>>10)

	i := imagine.DefaultConfig()
	fmt.Printf(`Imagine (Figure 2) — stream processor
  %d SIMD VLIW clusters: %d adders + %d multipliers + %d divider each,
  1 inter-cluster communication port per cluster
  stream register file: %d KB in %d-byte blocks, %d words/cycle
  %d memory-stream controllers, %d stream descriptor registers

`, i.Clusters, i.AddersPerCluster, i.MulsPerCluster, i.DivsPerCluster,
		i.SRF.CapacityBytes>>10, i.SRF.BlockBytes, i.SRF.WordsPerCycle,
		i.MemControllers, i.StreamDescRegs)

	r := rawsim.DefaultConfig()
	fmt.Printf(`Raw (Figure 3) — tiled processor
  %dx%d mesh of single-issue MIPS-style tiles with switch processors
  static network: %d-cycle nearest-neighbour latency, +%d per hop,
  one word per cycle per link; dynamic network: packetized (min %d flits)
  per-tile data memory: %d KB; %d peripheral DRAM ports

`, r.Mesh.Width, r.Mesh.Height, r.Mesh.BaseLatency, r.Mesh.HopLatency,
		r.Mesh.MinPacketWords, r.TileMem.CapacityBytes>>10, 2*r.Mesh.Width+2*r.Mesh.Height)

	p := ppc.DefaultConfig(ppc.AltiVec)
	fmt.Printf(`PowerPC G4 baseline (measured system in the paper)
  %d-wide issue, scalar FPU (latency %d), AltiVec 4 x 32-bit SIMD (latency %d)
  L1: %d KB %d-way, L2: %d KB %d-way, %d-byte lines
`, p.IssueWidth, p.FPLatency, p.VecLatency,
		p.L1.SizeBytes>>10, p.L1.Assoc, p.L2.SizeBytes>>10, p.L2.Assoc, p.L1.LineBytes)
	return nil
}
