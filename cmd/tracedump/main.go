// Command tracedump exposes the simulators' internals: a cycle-level
// VIRAM instruction trace (CSV) and Raw's per-tile utilization for a
// chosen kernel — the views an architect would pull from vsim or btl to
// understand a number in Table 3.
//
// Usage:
//
//	tracedump -machine viram -kernel bs -n 40       # first 40 trace rows
//	tracedump -machine viram -kernel ct -csv t.csv  # full trace to CSV
//	tracedump -machine raw -kernel cslc             # per-tile utilization
package main

import (
	"flag"
	"fmt"
	"os"

	"sigkern/internal/core"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/rawsim"
	"sigkern/internal/report"
	"sigkern/internal/viram"
)

func main() {
	machine := flag.String("machine", "viram", "viram or raw")
	kernel := flag.String("kernel", "bs", "ct, cslc, or bs")
	n := flag.Int("n", 40, "trace rows to print (viram)")
	csvPath := flag.String("csv", "", "write the full trace as CSV (viram)")
	flag.Parse()

	var err error
	switch *machine {
	case "viram":
		err = dumpVIRAM(*kernel, *n, *csvPath)
	case "raw":
		err = dumpRaw(*kernel)
	default:
		err = fmt.Errorf("unknown machine %q (want viram or raw)", *machine)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
		os.Exit(1)
	}
}

func runKernel(m core.Machine, kernel string) (core.Result, error) {
	w := core.PaperWorkload()
	switch kernel {
	case "ct":
		return m.RunCornerTurn(w.CornerTurn)
	case "cslc":
		return m.RunCSLC(w.CSLC)
	case "bs":
		return m.RunBeamSteering(w.Beam)
	default:
		return core.Result{}, fmt.Errorf("unknown kernel %q (want ct, cslc, or bs)", kernel)
	}
}

func dumpVIRAM(kernel string, n int, csvPath string) error {
	m := viram.New(viram.DefaultConfig())
	var entries []viram.TraceEntry
	m.SetTracer(func(e viram.TraceEntry) { entries = append(entries, e) })
	r, err := runKernel(m, kernel)
	if err != nil {
		return err
	}
	fmt.Printf("VIRAM %s: %d cycles, %d instructions traced\n\n",
		kernel, r.Cycles, len(entries))

	// Per-opcode summary.
	type agg struct {
		count int
		busy  uint64
	}
	byOp := map[string]*agg{}
	for _, e := range entries {
		a := byOp[viram.OpName(e.Op)]
		if a == nil {
			a = &agg{}
			byOp[viram.OpName(e.Op)] = a
		}
		a.count++
		a.busy += e.Duration
	}
	var rows [][]string
	for _, op := range []string{"vld", "vlds", "vst", "vsts", "vaddf", "vmulf", "vfma", "vaddi", "vsh", "vperm", "scalar"} {
		if a, ok := byOp[op]; ok {
			rows = append(rows, []string{op, fmt.Sprintf("%d", a.count), fmt.Sprintf("%d", a.busy)})
		}
	}
	if err := report.Table(os.Stdout, "instruction mix",
		[]string{"op", "count", "busy cycles"}, rows); err != nil {
		return err
	}
	fmt.Println()

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		var crows [][]string
		for _, e := range entries {
			crows = append(crows, traceRow(e))
		}
		if err := report.CSV(f, traceHeaders(), crows); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace rows to %s\n", len(entries), csvPath)
		return nil
	}

	if n > len(entries) {
		n = len(entries)
	}
	var trows [][]string
	for _, e := range entries[:n] {
		trows = append(trows, traceRow(e))
	}
	return report.Table(os.Stdout, fmt.Sprintf("first %d instructions", n),
		traceHeaders(), trows)
}

func traceHeaders() []string {
	return []string{"idx", "op", "vl", "unit", "dispatch", "start", "dur"}
}

func traceRow(e viram.TraceEntry) []string {
	return []string{
		fmt.Sprintf("%d", e.Index), viram.OpName(e.Op), fmt.Sprintf("%d", e.VL),
		e.Unit, fmt.Sprintf("%d", e.Dispatch), fmt.Sprintf("%d", e.Start),
		fmt.Sprintf("%d", e.Duration),
	}
}

func dumpRaw(kernel string) error {
	m := rawsim.New(rawsim.DefaultConfig())
	var r core.Result
	var err error
	// For CSLC show the unextrapolated run: the per-tile imbalance is
	// the point of this view.
	if kernel == "cslc" {
		r, err = m.RunCSLCImbalanced(cslc.PaperSpec(fft.Radix2))
	} else {
		r, err = runKernel(m, kernel)
	}
	if err != nil {
		return err
	}
	fmt.Printf("Raw %s: %d cycles (slowest tile)\n\n", kernel, r.Cycles)
	var rows [][]string
	for _, tu := range m.TileUtilization() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", tu.Tile),
			fmt.Sprintf("%d", tu.Cycles),
			tu.Breakdown.String(),
		})
	}
	return report.Table(os.Stdout, "per-tile utilization",
		[]string{"tile", "cycles", "breakdown"}, rows)
}
