// Command sweep runs parameter sweeps over the machine models: the
// design-space excursions the paper's analysis points at but does not
// plot — matrix size, VIRAM address generators, Raw tile counts, Imagine
// stream-descriptor registers, and beam-steering dwell counts.
//
// Sweeps execute through the simulation service's worker pool
// (internal/svc), machine-parallel; -workers controls the fan-out.
//
// Usage:
//
//	sweep -what matrix      # corner-turn cycles vs matrix size, all machines
//	sweep -what addrgens    # VIRAM corner turn vs address generators
//	sweep -what tiles       # Raw corner turn vs mesh size
//	sweep -what descriptors # Imagine corner turn vs descriptor registers
//	sweep -what dwells      # beam steering vs dwell count, all machines
//	sweep -what fftsize     # CSLC vs sub-band FFT size, all machines
//
// Crash safety: with -checkpoint FILE every completed (point, machine)
// cell is saved to FILE (atomic temp+rename JSON) as the sweep runs.
// After a crash or kill, rerunning with -resume loads the file and
// skips the verified-complete cells, re-simulating only what is
// missing; the rendered table is identical to an uninterrupted run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/report"
	"sigkern/internal/study"
)

func main() {
	what := flag.String("what", "matrix", "sweep to run: matrix, addrgens, tiles, descriptors, dwells, fftsize")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulations to run in parallel")
	checkpoint := flag.String("checkpoint", "", "save completed cells to this JSON file as the sweep runs")
	resume := flag.Bool("resume", false, "skip cells already verified-complete in the -checkpoint file")
	flag.Parse()
	if err := run(*what, *workers, *checkpoint, *resume); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

func run(what string, workers int, checkpoint string, resume bool) error {
	sw := study.Sweeper{Concurrency: workers}
	if resume && checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	var cp *study.Checkpoint
	if checkpoint != "" {
		var err error
		cp, err = loadOrNewCheckpoint(what, checkpoint, resume)
		if err != nil {
			return err
		}
		sw.Completed = cp
		sw.OnCell = func(label, machine string, r core.Result, elapsed time.Duration) {
			cp.Add(label, machine, r, elapsed)
			if err := cp.Save(checkpoint); err != nil {
				// A failed save only costs resumability, not results.
				fmt.Fprintf(os.Stderr, "sweep: checkpoint save: %v\n", err)
			}
		}
		defer printSummary(cp)
	}
	switch what {
	case "matrix":
		pts, err := sw.MatrixSizes([]int{256, 512, 1024, 2048})
		if err != nil {
			return err
		}
		return render("Corner-turn cycles (10^3) vs matrix size", "Matrix", pts)
	case "addrgens":
		pts, err := sw.VIRAMAddrGens([]int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		return render("VIRAM corner turn vs address generators (paper: 4; the 24% strided-limit factor)",
			"Addr gens", pts)
	case "tiles":
		pts, err := sw.RawTiles([]int{2, 3, 4, 6, 8})
		if err != nil {
			return err
		}
		if err := render("Raw corner turn vs mesh size", "Mesh", pts); err != nil {
			return err
		}
		fmt.Println("(tiles scale with mesh area, DRAM ports with its perimeter: the kernel is")
		fmt.Println(" issue-bound below 4x4 and port-bound above it)")
		return nil
	case "descriptors":
		pts, err := sw.ImagineDescriptors([]int{2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		if err := render("Imagine corner turn (fully pipelined) vs stream descriptor registers",
			"Descriptors", pts); err != nil {
			return err
		}
		fmt.Println("(flat beyond 2: the strip loop holds at most ~6 streams in flight, so the pool")
		fmt.Println(" size does not bind — the measured chip's limitation was issue ordering)")
		return nil
	case "fftsize":
		pts, err := sw.CSLCFFTSizes([]int{32, 64, 128, 256, 512})
		if err != nil {
			return err
		}
		return render("CSLC cycles (10^3) vs sub-band FFT size", "Transform", pts)
	case "dwells":
		pts, err := sw.BeamDwells([]int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		return render("Beam-steering cycles (10^3) vs dwell count", "Dwells", pts)
	default:
		return fmt.Errorf("unknown sweep %q", what)
	}
}

// printSummary reports per-machine cell metrics from the checkpoint:
// completed cells, verified cells, summed kilocycles, and wall-clock
// simulation time. Cells restored from a resumed checkpoint keep their
// recorded elapsed times, so the totals cover the whole sweep.
func printSummary(cp *study.Checkpoint) {
	sums := cp.Summary()
	if len(sums) == 0 {
		return
	}
	fmt.Println()
	fmt.Println("Per-machine cell metrics:")
	for _, s := range sums {
		fmt.Printf("  %-10s %2d cell(s), %2d verified, %12.1f kcycles, %8.1f ms wall\n",
			s.Machine, s.Cells, s.VerifiedCells, s.KCycles, s.WallMS)
	}
}

// loadOrNewCheckpoint resumes from path when asked (a missing file just
// starts fresh), refusing a checkpoint recorded for a different sweep.
func loadOrNewCheckpoint(what, path string, resume bool) (*study.Checkpoint, error) {
	if resume {
		cp, err := study.LoadCheckpoint(path)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Nothing recorded yet; fall through to a fresh checkpoint.
		case err != nil:
			return nil, err
		case cp.Sweep() != what:
			return nil, fmt.Errorf("checkpoint %s records sweep %q, not %q", path, cp.Sweep(), what)
		default:
			fmt.Fprintf(os.Stderr, "sweep: resuming, %d cell(s) already complete\n", cp.Len())
			return cp, nil
		}
	}
	return study.NewCheckpoint(what), nil
}

// render prints sweep points as a table with one column per machine, in
// the study's fixed machine order (paper order) so columns are stable
// across runs and sweeps.
func render(title, axis string, pts []study.Point) error {
	if len(pts) == 0 {
		return fmt.Errorf("empty sweep")
	}
	names := study.MachineColumns(pts)
	headers := make([]string, 0, 1+len(names))
	headers = append(append(headers, axis), names...)
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		row := make([]string, 0, 1+len(names))
		row = append(row, p.Label)
		for _, name := range names {
			row = append(row, report.KCycles(p.Cycles[name]))
		}
		rows = append(rows, row)
	}
	return report.Table(os.Stdout, title, headers, rows)
}
