package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/machines"
	"sigkern/internal/roofline"
	"sigkern/internal/svc"
)

// overloadChaos arms every execution with 150ms of injected latency on
// top of the usual transient faults: the kernels themselves simulate in
// microseconds, so without it one-worker shards never saturate and the
// overload machinery under test would sit idle.
var overloadChaos = []string{
	"SIGKERN_FAULTS=pool.execute:transient:0.05,pool.execute:latency:1:150ms",
}

// overloadSpec is one distinct workload in the flood (distinct specs
// defeat the memo, so every admission is real simulator work).
type overloadSpec struct {
	spec      svc.JobSpec
	simCycles uint64 // bit-exact reference from an in-process run
	estCycles uint64 // analytic roofline bound (the degraded answer)
}

func overloadSpecs(t *testing.T) []overloadSpec {
	t.Helper()
	var specs []overloadSpec
	for _, name := range []string{"PPC", "AltiVec", "VIRAM", "Raw"} {
		for _, rows := range []int{32, 48, 64, 80} {
			w := soakWorkload()
			w.CornerTurn = cornerturn.Spec{Rows: rows, Cols: 64, BlockSize: 16}
			m, err := machines.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(m, core.CornerTurn, w)
			if err != nil {
				t.Fatal(err)
			}
			est, err := roofline.ForJob(name, core.CornerTurn, w)
			if err != nil {
				t.Fatal(err)
			}
			specs = append(specs, overloadSpec{
				spec:      svc.JobSpec{Machine: name, Kernel: core.CornerTurn, Workload: &w},
				simCycles: res.Cycles,
				estCycles: est.Cycles,
			})
		}
	}
	return specs
}

// overloadResult is one flood request's outcome.
type overloadResult struct {
	status   int
	degraded bool // X-Degraded: brownout header present
	job      svc.Job
	latency  time.Duration
	specIdx  int
	err      error
}

func postOverload(gwURL, path string, spec svc.JobSpec, budget string) overloadResult {
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, gwURL+path, bytes.NewReader(body))
	if err != nil {
		return overloadResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if budget != "" {
		req.Header.Set("X-Deadline-Budget", budget)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return overloadResult{err: err}
	}
	defer resp.Body.Close()
	r := overloadResult{
		status:   resp.StatusCode,
		degraded: resp.Header.Get("X-Degraded") == "brownout",
		latency:  time.Since(start),
	}
	_ = json.NewDecoder(resp.Body).Decode(&r.job)
	return r
}

// TestOverloadSoak floods a chaos-armed 3-shard cluster — tiny queues,
// one worker each — with mixed-priority traffic and checks the
// overload contract end to end:
//
//   - every response is a legal overload answer (200/202/429/503/504),
//     never a hang past the deadline budget and never a 5xx surprise
//   - degraded answers are flagged consistently (X-Degraded header,
//     Degraded body field, estimate tier) and carry the exact analytic
//     cycle bound; some brownout answers are actually served
//   - every simulated answer is bit-identical to the in-process
//     reference, and no shard records a determinism violation: chaos
//     plus overload may cost latency or fidelity, never correctness
//   - once the flood stops and the brownout dwell passes, ?tier=auto
//     goes back to full simulation
func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real 4-process cluster; skipped in -short")
	}
	simserved := buildBinary(t, "simserved", "../simserved")
	simgate := buildBinary(t, "simgate", ".")

	shardNames := []string{"s1", "s2", "s3"}
	shards := make(map[string]*proc, len(shardNames))
	var shardSpec []string
	for _, name := range shardNames {
		shards[name] = startProcChaos(t, simserved, "127.0.0.1:0", overloadChaos,
			"-shard", name, "-workers", "1", "-queue", "4", "-timeout", "1m", "-drain", "5s")
		shardSpec = append(shardSpec, name+"="+shards[name].url)
	}
	gw := startProc(t, simgate, "127.0.0.1:0",
		"-shards", strings.Join(shardSpec, ","),
		"-probe-interval", "100ms")

	specs := overloadSpecs(t)

	// The flood: interactive clients ask ?tier=auto with a deadline
	// budget; batch clients submit async at batch priority. Together
	// they keep 1-worker/4-slot shards saturated.
	const (
		interactiveWorkers = 24
		batchWorkers       = 3
		roundsPerWorker    = 2
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var interactive, batch []overloadResult
	for g := 0; g < interactiveWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < roundsPerWorker; round++ {
				for i := range specs {
					idx := (i + g*2) % len(specs)
					r := postOverload(gw.url, "/v1/jobs?tier=auto&wait=1&timeout=20s",
						specs[idx].spec, "15s")
					r.specIdx = idx
					mu.Lock()
					interactive = append(interactive, r)
					mu.Unlock()
				}
			}
		}(g)
	}
	for g := 0; g < batchWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < roundsPerWorker; round++ {
				for i := range specs {
					idx := (i + g*5) % len(specs)
					r := postOverload(gw.url, "/v1/jobs?priority=batch", specs[idx].spec, "")
					r.specIdx = idx
					mu.Lock()
					batch = append(batch, r)
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()

	legal := map[int]bool{
		http.StatusOK:                 true,
		http.StatusAccepted:           true,
		http.StatusTooManyRequests:    true,
		http.StatusServiceUnavailable: true,
		http.StatusGatewayTimeout:     true,
	}
	var simOK, estOK, shed int
	var latencies []time.Duration
	for _, r := range interactive {
		if r.err != nil {
			t.Fatalf("interactive request failed at transport level: %v", r.err)
		}
		if !legal[r.status] {
			t.Fatalf("interactive answer %d is not a legal overload status", r.status)
		}
		latencies = append(latencies, r.latency)
		if r.status != http.StatusOK {
			shed++
			continue
		}
		// Consistency: header <=> body flag <=> tier; auto never leaks.
		if r.degraded != r.job.Degraded {
			t.Fatalf("X-Degraded header (%v) and Degraded body (%v) disagree: %+v", r.degraded, r.job.Degraded, r.job)
		}
		if r.job.Tier == svc.TierAuto {
			t.Fatalf("tier=auto leaked into a response: %+v", r.job)
		}
		want := specs[r.specIdx]
		switch {
		case r.job.Degraded:
			if r.job.Tier != svc.TierEstimate {
				t.Fatalf("degraded answer on tier %q, want estimate: %+v", r.job.Tier, r.job)
			}
			if r.job.Result == nil || r.job.Result.Cycles != want.estCycles {
				t.Fatalf("degraded answer cycles %+v, want analytic bound %d", r.job.Result, want.estCycles)
			}
			estOK++
		default:
			if r.job.Tier != svc.TierSimulate && r.job.Tier != "" {
				t.Fatalf("non-degraded answer on tier %q: %+v", r.job.Tier, r.job)
			}
			if r.job.State != svc.Done || r.job.Result == nil {
				t.Fatalf("simulated answer not terminal: %+v", r.job)
			}
			if r.job.Result.Cycles != want.simCycles {
				t.Fatalf("%s/%d: cluster cycles %d, reference %d — overload corrupted a simulation",
					want.spec.Machine, want.spec.Workload.CornerTurn.Rows, r.job.Result.Cycles, want.simCycles)
			}
			simOK++
		}
	}
	for _, r := range batch {
		if r.err != nil {
			t.Fatalf("batch request failed at transport level: %v", r.err)
		}
		if !legal[r.status] {
			t.Fatalf("batch answer %d is not a legal overload status", r.status)
		}
		if r.degraded {
			t.Fatalf("batch submit (no tier=auto) came back degraded: %+v", r.job)
		}
	}
	if simOK == 0 {
		t.Fatal("flood produced zero successful simulations")
	}
	if estOK == 0 {
		t.Fatal("flood never browned out: no degraded answer served by saturated 1-worker shards")
	}
	t.Logf("interactive: %d simulated, %d degraded, %d shed/timed out; batch: %d submits",
		simOK, estOK, shed, len(batch))

	// Budget-bounded tail: the p99 interactive wall clock must sit well
	// under the unbudgeted worst case (60s job timeout) — shedding,
	// fast-rejects and brownouts answer quickly, and the 15s budget
	// caps what is left. Allow transport slack over the 20s wait cap.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if p99 > 30*time.Second {
		t.Fatalf("interactive p99 = %s: the deadline budget did not bound the tail", p99)
	}

	// Recovery: after the flood drains and the brownout dwell passes,
	// ?tier=auto must serve full simulations again.
	deadline := time.Now().Add(20 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		time.Sleep(500 * time.Millisecond)
		r := postOverload(gw.url, "/v1/jobs?tier=auto&wait=1&timeout=30s", specs[0].spec, "")
		if r.err == nil && r.status == http.StatusOK && !r.job.Degraded {
			if r.job.Result == nil || r.job.Result.Cycles != specs[0].simCycles {
				t.Fatalf("post-recovery simulation cycles %+v, reference %d", r.job.Result, specs[0].simCycles)
			}
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("?tier=auto never returned to the simulate tier after the flood stopped")
	}

	// Chaos plus overload may never cost correctness: zero
	// determinism-guard trips on every shard, and the priority/budget
	// machinery actually engaged somewhere in the cluster.
	var totalShed, totalExpired, totalBudget, totalBrownout uint64
	for _, name := range shardNames {
		var m struct {
			Determinism    uint64 `json:"determinism_violations"`
			Shed           uint64 `json:"jobs_shed"`
			ShedBatch      uint64 `json:"jobs_shed_batch"`
			BudgetRejected uint64 `json:"budget_rejected"`
			ExpiredDropped uint64 `json:"expired_jobs_dropped"`
			BrownoutServed uint64 `json:"brownout_served"`
		}
		getJSON(t, shards[name].url+"/metrics?format=json", &m)
		if m.Determinism != 0 {
			t.Fatalf("shard %s recorded %d determinism violations", name, m.Determinism)
		}
		totalShed += m.Shed
		totalExpired += m.ExpiredDropped
		totalBudget += m.BudgetRejected
		totalBrownout += m.BrownoutServed
	}
	if totalBrownout == 0 {
		t.Fatal("no shard counted a brownout-served answer despite degraded responses")
	}
	t.Logf("cluster totals: shed=%d expired_dropped=%d budget_rejected=%d brownout_served=%d",
		totalShed, totalExpired, totalBudget, totalBrownout)
}

// TestOverloadBatchYieldsToInteractive drives one tiny shard directly
// (no gateway): with the queue full of batch work, an interactive
// submit must still be admitted — the two-level queue holds a slot —
// while one more batch submit sheds first.
func TestOverloadBatchYieldsToInteractive(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real shard process; skipped in -short")
	}
	simserved := buildBinary(t, "simserved", "../simserved")
	shard := startProcChaos(t, simserved, "127.0.0.1:0", overloadChaos,
		"-shard", "solo", "-workers", "1", "-queue", "8", "-timeout", "1m", "-drain", "5s")

	// Saturate with async batch submissions of distinct specs.
	specs := overloadSpecs(t)
	var batchStatuses []int
	for _, s := range specs {
		r := postOverload(shard.url, "/v1/jobs?priority=batch", s.spec, "")
		if r.err != nil {
			t.Fatal(r.err)
		}
		batchStatuses = append(batchStatuses, r.status)
	}
	sawShed := false
	for _, st := range batchStatuses {
		if st == http.StatusTooManyRequests {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatalf("16 async batch submits against a 1-worker/8-slot shard never shed: %v", batchStatuses)
	}
	// Interactive still gets in (batch sheds at 3/4 interactive
	// occupancy, and the interactive queue is empty).
	w := soakWorkload()
	w.CornerTurn = cornerturn.Spec{Rows: 96, Cols: 64, BlockSize: 16}
	r := postOverload(shard.url, "/v1/jobs",
		svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}, "")
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.status != http.StatusAccepted && r.status != http.StatusOK {
		t.Fatalf("interactive submit on a batch-saturated shard: status %d, want admission", r.status)
	}
	var m struct {
		Shed      uint64 `json:"jobs_shed"`
		ShedBatch uint64 `json:"jobs_shed_batch"`
	}
	getJSON(t, shard.url+"/metrics?format=json", &m)
	if m.ShedBatch == 0 || m.ShedBatch != m.Shed {
		t.Fatalf("shed=%d shed_batch=%d: only batch work should have shed", m.Shed, m.ShedBatch)
	}
}
