// Batch soak: the grid fast path driven end-to-end through a real
// 4-process cluster — group-committed journaling shards behind a
// simgate — with a SIGKILL mid-batch, a journal replay restart, and a
// final cmd/compare gate at threshold zero.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sigkern/internal/svc"
)

// postBatchNDJSON drives one NDJSON batch through url and decodes the
// merged stream: cells by index plus the trailing summary. Cells are
// encoded in refs order, so index i is refs[i].
func postBatchNDJSON(t *testing.T, url string, refs []refJob, onFirstLine func()) (map[int]svc.BatchResult, svc.BatchSummary) {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, r := range refs {
		if err := enc.Encode(r.spec); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url+"/v1/batch", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("POST /v1/batch: %d: %s", resp.StatusCode, buf.String())
	}
	cells := make(map[int]svc.BatchResult)
	var sum svc.BatchSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Index *int `json:"index"`
			Done  bool `json:"done"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", raw, err)
		}
		if probe.Index == nil {
			if err := json.Unmarshal(raw, &sum); err != nil || !probe.Done {
				t.Fatalf("unexpected stream line %q", raw)
			}
			continue
		}
		var br svc.BatchResult
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("bad cell line %q: %v", raw, err)
		}
		if onFirstLine != nil {
			onFirstLine()
			onFirstLine = nil
		}
		if _, dup := cells[br.Index]; dup {
			t.Fatalf("index %d answered twice", br.Index)
		}
		cells[br.Index] = br
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return cells, sum
}

// assertBatchMatchesReference requires every reference cell answered
// Done with bit-identical cycles.
func assertBatchMatchesReference(t *testing.T, stage string, cells map[int]svc.BatchResult, refs []refJob) {
	t.Helper()
	if len(cells) != len(refs) {
		t.Fatalf("%s: %d cells answered, want %d", stage, len(cells), len(refs))
	}
	for i, r := range refs {
		br, ok := cells[i]
		if !ok {
			t.Fatalf("%s: index %d (%s/%s) missing", stage, i, r.machine, r.kernel)
		}
		if br.State != svc.Done || br.Result == nil {
			t.Fatalf("%s: cell %d (%s/%s): state %s error %q", stage, i, r.machine, r.kernel, br.State, br.Error)
		}
		if br.Result.Cycles != r.cycles {
			t.Fatalf("%s: cell %d (%s/%s): cluster %d cycles, reference %d",
				stage, i, r.machine, r.kernel, br.Result.Cycles, r.cycles)
		}
	}
}

// shardJobIDs lists the job IDs a shard currently serves.
func shardJobIDs(t *testing.T, shardURL string) map[string]uint64 {
	t.Helper()
	ids := make(map[string]uint64)
	var page svc.JobListPage
	if code := getJSON(t, shardURL+"/v1/jobs?limit=500", &page); code != http.StatusOK {
		t.Fatalf("GET /v1/jobs on %s: %d", shardURL, code)
	}
	for _, j := range page.Jobs {
		if j.State == svc.Done && j.Result != nil {
			ids[j.ID] = j.Result.Cycles
		}
	}
	return ids
}

// TestBatchSoakKillMidBatchReplayRestart is the grid fast path's
// cluster acceptance soak: a full machine×kernel grid goes through
// POST /v1/batch on the gateway, split across three chaos-armed
// journaling shards. One shard is SIGKILLed while a second batch is
// mid-stream; the gateway reroutes its unanswered cells so the batch
// still answers every index bit-identically. The dead shard then
// restarts on its own journal and must serve its batch-member jobs
// under their original IDs — restored from the group-commit acceptance
// records — and a final re-driven grid passes cmd/compare at
// threshold 0 with zero determinism-guard trips anywhere.
func TestBatchSoakKillMidBatchReplayRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real 4-process cluster; skipped in -short")
	}
	simserved := buildBinary(t, "simserved", "../simserved")
	compare := buildBinary(t, "compare", "../compare")
	simgate := buildBinary(t, "simgate", ".")

	shardNames := []string{"s1", "s2", "s3"}
	journals := make(map[string]string, len(shardNames))
	shards := make(map[string]*proc, len(shardNames))
	shardArgs := func(name string) []string {
		return []string{
			"-shard", name, "-journal", journals[name], "-fsync", "always",
			"-workers", "2", "-queue", "64", "-timeout", "1m", "-drain", "20s"}
	}
	var journalSpec, shardSpec []string
	for _, name := range shardNames {
		journals[name] = t.TempDir()
		shards[name] = startProc(t, simserved, "127.0.0.1:0", shardArgs(name)...)
		journalSpec = append(journalSpec, name+"="+journals[name])
		shardSpec = append(shardSpec, name+"="+shards[name].url)
	}
	gw := startProc(t, simgate, "127.0.0.1:0",
		"-shards", strings.Join(shardSpec, ","),
		"-journals", strings.Join(journalSpec, ","),
		"-probe-interval", "100ms")

	refs := referenceJobs(t, soakWorkload())

	// Batch 1: all shards healthy. The grid splits by spec hash, every
	// cell answers bit-identical to the in-process reference.
	cells1, sum1 := postBatchNDJSON(t, gw.url, refs, nil)
	assertBatchMatchesReference(t, "batch 1", cells1, refs)
	if sum1.Failed != 0 {
		t.Fatalf("batch 1 summary: %+v", sum1)
	}

	// Pick the victim: a shard actually holding batch members, so its
	// restart later proves group-commit replay, not an empty journal.
	victim := ""
	victimJobs := map[string]uint64{}
	for _, name := range shardNames {
		if ids := shardJobIDs(t, shards[name].url); len(ids) > 0 {
			victim, victimJobs = name, ids
			break
		}
	}
	if victim == "" {
		t.Fatal("no shard holds batch members after batch 1")
	}

	// Batch 2, and the SIGKILL lands while its stream is open: as soon
	// as the first cell arrives, the victim dies with no drain and no
	// snapshot. The gateway reroutes whatever the victim never answered;
	// the client still sees every index, still bit-identical. (Memo hits
	// on surviving shards are fine — cached answers are still answers.)
	t.Logf("SIGKILL %s mid-batch (%d jobs served)", victim, len(victimJobs))
	cells2, _ := postBatchNDJSON(t, gw.url, refs, func() { shards[victim].kill() })
	assertBatchMatchesReference(t, "batch 2 (mid-batch kill)", cells2, refs)

	// Wait until the prober has seen the death — the gateway must know
	// it is routing around a hole, not just winning races.
	downBy := time.Now().Add(10 * time.Second)
	for {
		var h struct {
			ReadyShards int `json:"ready_shards"`
		}
		getJSON(t, gw.url+"/healthz", &h)
		if h.ReadyShards == len(shardNames)-1 {
			break
		}
		if time.Now().After(downBy) {
			t.Fatalf("gateway never noticed %s dying", victim)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Batch 3 with the shard known-dead: the victim's cells land on
	// ring successors (either counted as reroutes or routed around a
	// probed-down shard) and the batch still completes whole.
	cells3, _ := postBatchNDJSON(t, gw.url, refs, nil)
	assertBatchMatchesReference(t, "batch 3 (shard down)", cells3, refs)

	// Restart the victim on the same address and journal. Replay must
	// restore its batch members — accepted via one group-commit record,
	// finished via amortized-sync transitions — under their original IDs
	// with their original cycles.
	addr := strings.TrimPrefix(shards[victim].url, "http://")
	shards[victim] = startProc(t, simserved, addr, shardArgs(victim)...)
	for id, cycles := range victimJobs {
		var job svc.Job
		if code := getJSON(t, shards[victim].url+"/v1/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("member %s missing after group-commit replay: status %d", id, code)
		}
		if job.State != svc.Done || job.Result == nil || job.Result.Cycles != cycles {
			t.Fatalf("member %s replayed as %s/%v, want Done/%d", id, job.State, job.Result, cycles)
		}
	}

	// Wait for the gateway to see the full ring again, then the final
	// re-driven grid and the cmd/compare gate at threshold 0.
	healed := time.Now().Add(10 * time.Second)
	for {
		var h struct {
			ReadyShards int `json:"ready_shards"`
		}
		getJSON(t, gw.url+"/healthz", &h)
		if h.ReadyShards == len(shardNames) {
			break
		}
		if time.Now().After(healed) {
			t.Fatalf("gateway never saw %d ready shards after restart", len(shardNames))
		}
		time.Sleep(50 * time.Millisecond)
	}
	cellsF, sumF := postBatchNDJSON(t, gw.url, refs, nil)
	assertBatchMatchesReference(t, "final batch", cellsF, refs)
	if sumF.Failed != 0 {
		t.Fatalf("final summary: %+v", sumF)
	}
	final := make(map[string]uint64, len(refs))
	refCycles := make(map[string]uint64, len(refs))
	for i, r := range refs {
		final[r.key] = cellsF[i].Result.Cycles
		refCycles[r.key] = r.cycles
	}
	dir := t.TempDir()
	refCSV := filepath.Join(dir, "reference.csv")
	gotCSV := filepath.Join(dir, "batch.csv")
	writeCyclesCSV(t, refCSV, refCycles, refs)
	writeCyclesCSV(t, gotCSV, final, refs)
	if out, err := exec.Command(compare, "-threshold", "0", refCSV, gotCSV).CombinedOutput(); err != nil {
		t.Fatalf("cmd/compare found cycle drift between reference and batch grid:\n%s\n%v", out, err)
	}

	// Chaos, a SIGKILL, reroutes and a replay later: not one
	// determinism-guard trip anywhere in the cluster, and the shards
	// actually exercised the fast path (batch groups accepted).
	groups := uint64(0)
	for _, name := range shardNames {
		var m struct {
			Determinism uint64 `json:"determinism_violations"`
			BatchGroups uint64 `json:"batch_groups"`
		}
		getJSON(t, shards[name].url+"/metrics?format=json", &m)
		if m.Determinism != 0 {
			t.Fatalf("shard %s recorded %d determinism violations", name, m.Determinism)
		}
		groups += m.BatchGroups
	}
	if groups == 0 {
		t.Fatal("no shard accepted a batch group — the grid never hit the fast path")
	}
}
