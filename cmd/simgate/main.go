// Command simgate runs the cluster gateway: it consistent-hashes job
// submissions across a set of simserved shards and keeps the cluster
// answering through shard failures.
//
// Usage:
//
//	simgate -addr :8090 \
//	    -shards s1=http://127.0.0.1:8081,s2=http://127.0.0.1:8082,s3=http://127.0.0.1:8083 \
//	    -journals s1=/var/lib/sim/s1,s2=/var/lib/sim/s2,s3=/var/lib/sim/s3
//
// Shard membership comes from -shards (static name=url pairs) and/or
// -shardfiles (name=addrfile pairs, each file written by a simserved
// started with -addrfile — handy for ":0" test clusters). At least one
// shard is required.
//
// Routing: POST /v1/jobs hashes the canonical spec onto the ring, so
// the same spec always lands on the same shard and the cluster dedups
// via that shard's memo and idempotency index. The gateway forwards
// the client's Idempotency-Key — or injects the spec hash when the
// client sent none — so retries and reroutes are answered exactly
// once. Shard failure reroutes along the ring; per-shard circuit
// breakers stop hammering a dead backend; idempotent reads hedge to
// the next candidate after -hedge-delay. POST /v1/batch splits a grid
// across the ring cell by cell; POST /v1/dse expands a design-space
// exploration at the gateway, routes each design point by its
// canonical spec hash, and merges the shard streams under one
// gateway-computed Pareto frontier.
//
// Config safety: every /readyz probe records the shard's hardware
// config-set hash. While ready shards disagree — say, one restarted
// with a different -config — the write paths refuse with 503 (counted
// as simgate_config_mismatch_total) rather than let the ring decide
// which hardware answers a spec; reads keep flowing.
//
// Deadline budgets: an X-Deadline-Budget header (or, absent one, the
// ?timeout= query) bounds the gateway's whole routing effort —
// reroutes, hedges and all. The remaining budget is sliced evenly
// across the attempts left, forwarded to each shard as a decremented
// X-Deadline-Budget, and drives the per-attempt request context; when
// it runs out mid-route the client gets 504 (counted as
// simgate_budget_exhausted_total) instead of an open-ended wait.
// ?tier=, ?priority= and X-Degraded pass through untouched: degrading
// to an analytic estimate is the shard's brownout decision, and the
// gateway never masks the flag. A dead shard's WAL can be
// replayed into its ring successors with POST /v1/rebalance?shard=NAME
// when -journals maps that shard to a directory the gateway can read.
//
// GET /healthz and /readyz report per-shard probe state (503 when no
// shard is ready); GET /metrics serves gateway counters (flat text,
// ?format=prometheus, ?format=json).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sigkern/internal/cluster"
	"sigkern/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	addrFile := flag.String("addrfile", "", "write the bound listen address to this file (useful with -addr :0)")
	shardsSpec := flag.String("shards", "", "static shard membership: name=url,name=url")
	shardFiles := flag.String("shardfiles", "", "shard membership from simserved addrfiles: name=path,name=path")
	shardWait := flag.Duration("shardfile-wait", 10*time.Second, "how long to wait for -shardfiles to be written")
	journals := flag.String("journals", "", "shard journal directories for /v1/rebalance: name=dir,name=dir")
	replicas := flag.Int("replicas", cluster.DefaultReplicas, "virtual nodes per shard on the hash ring")
	probeInterval := flag.Duration("probe-interval", cluster.DefaultProbeInterval, "shard health-probe period")
	hedgeDelay := flag.Duration("hedge-delay", cluster.DefaultHedgeDelay, "idempotent reads hedge to the next shard after this long")
	maxHedges := flag.Int("max-hedges", 32, "hedged requests allowed in flight across all reads")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()

	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "simgate: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	if err := run(gateConfig{
		addr: *addr, addrFile: *addrFile,
		shards: *shardsSpec, shardFiles: *shardFiles, shardWait: *shardWait,
		journals: *journals, replicas: *replicas,
		probeInterval: *probeInterval, hedgeDelay: *hedgeDelay, maxHedges: *maxHedges,
		drain: *drain, logFormat: *logFormat,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "simgate: %v\n", err)
		os.Exit(1)
	}
}

type gateConfig struct {
	addr, addrFile string
	shards         string
	shardFiles     string
	shardWait      time.Duration
	journals       string
	replicas       int
	probeInterval  time.Duration
	hedgeDelay     time.Duration
	maxHedges      int
	drain          time.Duration
	logFormat      string
}

// membership merges -shards and -shardfiles into one shard set,
// refusing a name defined by both.
func membership(cfg gateConfig) ([]cluster.Shard, error) {
	shards, err := cluster.ParseShards(cfg.shards)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		seen[s.Name] = true
	}
	if cfg.shardFiles != "" {
		files, err := cluster.ParseKVSpec(cfg.shardFiles)
		if err != nil {
			return nil, err
		}
		for name := range files {
			if seen[name] {
				return nil, fmt.Errorf("shard %q defined by both -shards and -shardfiles", name)
			}
		}
		resolved, err := cluster.ResolveAddrFiles(files, cfg.shardWait)
		if err != nil {
			return nil, err
		}
		shards = append(shards, resolved...)
	}
	if len(shards) == 0 {
		return nil, errors.New("no shards: pass -shards and/or -shardfiles")
	}
	return shards, nil
}

func run(cfg gateConfig) error {
	logger := obs.NewLogger(os.Stderr, cfg.logFormat)
	shards, err := membership(cfg)
	if err != nil {
		return err
	}
	journalDirs, err := cluster.ParseKVSpec(cfg.journals)
	if err != nil {
		return err
	}
	for name := range journalDirs {
		known := false
		for _, s := range shards {
			if s.Name == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("-journals names unknown shard %q", name)
		}
	}

	gw, err := cluster.NewGateway(cluster.Options{
		Shards:        shards,
		Replicas:      cfg.replicas,
		ProbeInterval: cfg.probeInterval,
		HedgeDelay:    cfg.hedgeDelay,
		MaxHedges:     cfg.maxHedges,
		JournalDirs:   journalDirs,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	gw.Start()
	defer gw.Close()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("addrfile: %w", err)
		}
	}
	server := &http.Server{
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		names := make([]string, 0, len(shards))
		for _, s := range shards {
			names = append(names, s.Name+"="+s.URL)
		}
		logger.Info("listening",
			"addr", ln.Addr().String(), "shards", names,
			"replicas", cfg.replicas, "hedge_delay", cfg.hedgeDelay.String())
		if err := server.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain_deadline", cfg.drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}
