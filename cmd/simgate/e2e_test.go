package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/machines"
	"sigkern/internal/svc"
)

// soakChaos matches the make-chaos fault mix: transient execute faults
// and latency injection, seeded (SIGKERN_FAULTS_SEED, overridable for
// the cluster-soak seed sweep) so runs are reproducible. The pool's
// retry budget absorbs the transients, so jobs still terminate Done —
// with bit-identical cycles, or the determinism guard trips.
var soakChaos = []string{
	"SIGKERN_FAULTS=pool.execute:transient:0.1,pool.execute:latency:0.05:2ms",
}

func soakSeed() string {
	if s := os.Getenv("SIGKERN_FAULTS_SEED"); s != "" {
		return "SIGKERN_FAULTS_SEED=" + s
	}
	return "SIGKERN_FAULTS_SEED=42"
}

func soakWorkload() core.Workload {
	return core.Workload{
		CornerTurn: cornerturn.Spec{Rows: 64, Cols: 64, BlockSize: 16},
		CSLC:       cslc.Spec{MainChannels: 1, AuxChannels: 1, Samples: 256, SubBands: 3, FFTSize: 64, Radix: fft.Radix4},
		Beam:       beamsteer.Spec{Elements: 64, Directions: 2, Dwells: 2, ShiftBits: 2, Rounding: 2},
	}
}

// buildBinary compiles one of the repo's commands into a temp dir.
func buildBinary(t *testing.T, name, pkgDir string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = pkgDir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkgDir, err, out)
	}
	return bin
}

// proc is one daemon process (a shard or the gateway) in the soak
// cluster.
type proc struct {
	t    *testing.T
	cmd  *exec.Cmd
	url  string
	logs *bytes.Buffer
}

func (p *proc) kill() {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		p.t.Fatal(err)
	}
	_ = p.cmd.Wait()
}

// startProc launches a daemon binary with -addr/-addrfile discovery,
// chaos armed, and waits until /healthz answers anything at all.
func startProc(t *testing.T, bin, addr string, args ...string) *proc {
	t.Helper()
	return startProcChaos(t, bin, addr, soakChaos, args...)
}

// startProcChaos is startProc with a caller-chosen fault mix — the
// overload soak arms heavy latency injection so one-worker shards
// actually saturate.
func startProcChaos(t *testing.T, bin, addr string, chaos []string, args ...string) *proc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	full := append([]string{"-addr", addr, "-addrfile", addrFile}, args...)
	cmd := exec.Command(bin, full...)
	cmd.Env = append(os.Environ(), append(append([]string{}, chaos...), soakSeed())...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{t: t, cmd: cmd, logs: &logs}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
			_ = p.cmd.Wait()
		}
		if t.Failed() {
			t.Logf("%s logs:\n%s", filepath.Base(bin), logs.String())
		}
	})
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if a, err := os.ReadFile(addrFile); err == nil && len(a) > 0 {
			p.url = "http://" + strings.TrimSpace(string(a))
			if resp, err := http.Get(p.url + "/healthz"); err == nil {
				resp.Body.Close()
				return p
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became reachable; logs:\n%s", filepath.Base(bin), logs.String())
	return nil
}

// submitVia posts a job through the gateway with an explicit
// Idempotency-Key and ?wait=1, returning the decoded job and the shard
// that answered (X-Simgate-Shard).
func submitVia(t *testing.T, gwURL, key string, spec svc.JobSpec) (*http.Response, svc.Job, string) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, gwURL+"/v1/jobs?wait=1&timeout=60s", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job svc.Job
	_ = json.NewDecoder(resp.Body).Decode(&job)
	return resp, job, resp.Header.Get("X-Simgate-Shard")
}

type refJob struct {
	key     string
	machine string
	kernel  core.KernelID
	spec    svc.JobSpec
	cycles  uint64
}

// referenceJobs computes the ground truth in-process: 5 machines × 3
// kernels. The simulators are deterministic, so the cluster — shards
// SIGKILLed, rerouted, rebalanced, restarted or not — must agree bit
// for bit.
func referenceJobs(t *testing.T, w core.Workload) []refJob {
	t.Helper()
	var refs []refJob
	for _, name := range []string{"PPC", "AltiVec", "VIRAM", "Imagine", "Raw"} {
		m, err := machines.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []core.KernelID{core.CornerTurn, core.CSLC, core.BeamSteering} {
			res, err := core.Run(m, k, w)
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, refJob{
				key:     fmt.Sprintf("soak-%s-%s", name, k),
				machine: name,
				kernel:  k,
				spec:    svc.JobSpec{Machine: name, Kernel: k, Workload: &w},
				cycles:  res.Cycles,
			})
		}
	}
	return refs
}

// writeCyclesCSV writes results in the sigstudy CSV shape that
// cmd/compare diffs.
func writeCyclesCSV(t *testing.T, path string, cycles map[string]uint64, refs []refJob) {
	t.Helper()
	var b strings.Builder
	b.WriteString("machine,kernel,cycles\n")
	for _, r := range refs {
		fmt.Fprintf(&b, "%s,%s,%d\n", r.machine, r.kernel, cycles[r.key])
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// TestClusterSoakKillRerouteRebalanceRestart is the cluster acceptance
// soak: three chaos-armed journaling shards behind a simgate. One
// shard is SIGKILLed mid-sweep; the sweep continues through reroutes;
// resubmits prove exactly-once; the dead shard's WAL is rebalanced
// into its ring successors; the shard restarts on its own journal and
// serves its original jobs. Every cycle count, at every stage, must be
// bit-identical to the in-process reference — verified a final time
// with cmd/compare at threshold 0 — and no shard may record a single
// determinism-guard trip.
func TestClusterSoakKillRerouteRebalanceRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real 4-process cluster; skipped in -short")
	}
	simserved := buildBinary(t, "simserved", "../simserved")
	compare := buildBinary(t, "compare", "../compare")
	simgate := buildBinary(t, "simgate", ".")

	shardNames := []string{"s1", "s2", "s3"}
	journals := make(map[string]string, len(shardNames))
	shards := make(map[string]*proc, len(shardNames))
	shardArgs := func(name string) []string {
		return []string{
			"-shard", name, "-journal", journals[name], "-fsync", "always",
			"-workers", "2", "-queue", "64", "-timeout", "1m", "-drain", "20s"}
	}
	var journalSpec, shardSpec []string
	for _, name := range shardNames {
		journals[name] = t.TempDir()
		shards[name] = startProc(t, simserved, "127.0.0.1:0", shardArgs(name)...)
		journalSpec = append(journalSpec, name+"="+journals[name])
		shardSpec = append(shardSpec, name+"="+shards[name].url)
	}
	gw := startProc(t, simgate, "127.0.0.1:0",
		"-shards", strings.Join(shardSpec, ","),
		"-journals", strings.Join(journalSpec, ","),
		"-probe-interval", "100ms")

	refs := referenceJobs(t, soakWorkload())

	// Sweep 1 (first half): all shards healthy. Jobs route by spec
	// hash; every answer must match the reference.
	half := len(refs) / 2
	ids := make(map[string]string)
	victim := ""
	victimJobs := make(map[string]string) // key -> job ID served by the victim pre-kill
	for _, r := range refs[:half] {
		resp, job, shard := submitVia(t, gw.url, r.key, r.spec)
		if resp.StatusCode != http.StatusOK || job.State != svc.Done || job.Result == nil {
			t.Fatalf("%s: status %d job %+v", r.key, resp.StatusCode, job)
		}
		if job.Result.Cycles != r.cycles {
			t.Fatalf("%s: cluster cycles %d, reference %d", r.key, job.Result.Cycles, r.cycles)
		}
		ids[r.key] = job.ID
		if victim == "" {
			victim = shard // the first serving shard is guaranteed to own work
		}
		if shard == victim {
			victimJobs[r.key] = job.ID
		}
	}
	if victim == "" {
		t.Fatal("no shard answered sweep 1")
	}

	// Mid-sweep SIGKILL: no drain, no snapshot — the victim dies with
	// completed jobs only in its WAL and its ring range orphaned.
	t.Logf("SIGKILL %s (%d jobs served)", victim, len(victimJobs))
	shards[victim].kill()

	// Sweep 1 continues: victim-owned submissions reroute to ring
	// successors and still answer with reference cycles.
	for _, r := range refs[half:] {
		resp, job, _ := submitVia(t, gw.url, r.key, r.spec)
		if resp.StatusCode != http.StatusOK || job.State != svc.Done || job.Result == nil {
			t.Fatalf("%s after kill: status %d job %+v", r.key, resp.StatusCode, job)
		}
		if job.Result.Cycles != r.cycles {
			t.Fatalf("%s after kill: cycles %d, reference %d", r.key, job.Result.Cycles, r.cycles)
		}
		ids[r.key] = job.ID
	}

	// Rebalance: replay the victim's WAL into its ring successors. The
	// pre-kill jobs — completed only on the dead shard — become
	// servable again under their original IDs and original bytes.
	var reb struct {
		Shipped int `json:"shipped"`
	}
	resp, err := http.Post(gw.url+"/v1/rebalance?shard="+victim, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reb.Shipped == 0 {
		t.Fatalf("rebalance: status %d shipped %d", resp.StatusCode, reb.Shipped)
	}
	for key, id := range victimJobs {
		var job svc.Job
		if code := getJSON(t, gw.url+"/v1/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("%s: rebalanced job %s not servable: status %d", key, id, code)
		}
		var want uint64
		for _, r := range refs {
			if r.key == key {
				want = r.cycles
			}
		}
		if job.State != svc.Done || job.Result == nil || job.Result.Cycles != want {
			t.Fatalf("%s: rebalanced job %s = %+v, reference %d", key, id, job, want)
		}
	}

	// Exactly-once sweep: resubmit every key. A key the dead shard
	// served replays the original job from the successor the rebalance
	// shipped it to; every other key replays where it ran. No key may
	// come back as new work or a new ID.
	for _, r := range refs {
		resp, job, _ := submitVia(t, gw.url, r.key, r.spec)
		if resp.StatusCode != http.StatusOK || job.ID != ids[r.key] {
			t.Fatalf("%s resubmit: status %d id %s, want replay of %s — rerouted job answered more than once",
				r.key, resp.StatusCode, job.ID, ids[r.key])
		}
		if resp.Header.Get("Idempotency-Replayed") != "true" {
			t.Fatalf("%s resubmit: not marked Idempotency-Replayed", r.key)
		}
		if job.Result == nil || job.Result.Cycles != r.cycles {
			t.Fatalf("%s resubmit: result %+v, reference %d", r.key, job.Result, r.cycles)
		}
	}
	var gwm struct {
		Reroutes uint64 `json:"reroutes_total"`
	}
	getJSON(t, gw.url+"/metrics?format=json", &gwm)
	if gwm.Reroutes == 0 {
		t.Fatal("gateway recorded zero reroutes across a shard kill")
	}

	// Restart the victim on the same address and journal: it replays
	// its own WAL and serves its original jobs again, bit-identical.
	addr := strings.TrimPrefix(shards[victim].url, "http://")
	shards[victim] = startProc(t, simserved, addr, shardArgs(victim)...)
	for key, id := range victimJobs {
		var job svc.Job
		if code := getJSON(t, shards[victim].url+"/v1/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("%s: job %s missing after WAL replay: status %d", key, id, code)
		}
		if job.State != svc.Done || job.Result == nil {
			t.Fatalf("%s after restart: %+v", key, job)
		}
	}

	// Final sweep through the healed cluster (wait for the gateway to
	// see three ready shards again), then the cmd/compare gate.
	healed := time.Now().Add(10 * time.Second)
	for {
		var h struct {
			ReadyShards int `json:"ready_shards"`
		}
		getJSON(t, gw.url+"/healthz", &h)
		if h.ReadyShards == len(shardNames) {
			break
		}
		if time.Now().After(healed) {
			t.Fatalf("gateway never saw %d ready shards after restart", len(shardNames))
		}
		time.Sleep(50 * time.Millisecond)
	}
	final := make(map[string]uint64)
	for _, r := range refs {
		resp, job, _ := submitVia(t, gw.url, r.key, r.spec)
		if resp.StatusCode != http.StatusOK || job.State != svc.Done || job.Result == nil {
			t.Fatalf("%s final sweep: status %d job %+v", r.key, resp.StatusCode, job)
		}
		final[r.key] = job.Result.Cycles
	}
	refCycles := make(map[string]uint64)
	for _, r := range refs {
		refCycles[r.key] = r.cycles
	}
	dir := t.TempDir()
	refCSV := filepath.Join(dir, "reference.csv")
	gotCSV := filepath.Join(dir, "cluster.csv")
	writeCyclesCSV(t, refCSV, refCycles, refs)
	writeCyclesCSV(t, gotCSV, final, refs)
	if out, err := exec.Command(compare, "-threshold", "0", refCSV, gotCSV).CombinedOutput(); err != nil {
		t.Fatalf("cmd/compare found cycle drift between reference and cluster:\n%s\n%v", out, err)
	}

	// Zero determinism-guard trips on every shard: chaos, kills,
	// reroutes and replays may cost latency, never correctness.
	for _, name := range shardNames {
		var m struct {
			Determinism uint64 `json:"determinism_violations"`
		}
		getJSON(t, shards[name].url+"/metrics?format=json", &m)
		if m.Determinism != 0 {
			t.Fatalf("shard %s recorded %d determinism violations", name, m.Determinism)
		}
	}
}
