package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/svc"
)

// dsePost posts a DSERequest to the live daemon and decodes the NDJSON
// stream into its point lines plus the final summary.
func dsePost(t *testing.T, d *daemon, req svc.DSERequest) ([]svc.DSEPoint, svc.DSESummary) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.url+"/v1/dse", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/dse: status %d", resp.StatusCode)
	}
	var points []svc.DSEPoint
	var sum svc.DSESummary
	sawSummary := false
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		var probe struct {
			Index  *int `json:"index"`
			Points *int `json:"points"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatal(err)
		}
		if probe.Points != nil && probe.Index == nil {
			if err := json.Unmarshal(raw, &sum); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var pt svc.DSEPoint
		if err := json.Unmarshal(raw, &pt); err != nil {
			t.Fatal(err)
		}
		points = append(points, pt)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return points, sum
}

// TestDSESmoke is the `make dse-smoke` gate against a real daemon
// process: an empty exploration answers the paper cell bit-identically
// to /v1/tables/3, and the VIRAM lanes sweep returns four distinct,
// monotonically improving corner-turn cycle counts with a non-empty
// Pareto frontier.
func TestDSESmoke(t *testing.T) {
	bin := buildDaemon(t)
	d := startDaemon(t, bin, t.TempDir())

	// The paper cell, from the table endpoint the DSE base must match.
	resp, err := http.Get(d.url + "/v1/tables/3")
	if err != nil {
		t.Fatal(err)
	}
	var table struct {
		Cycles map[string]map[core.KernelID]uint64 `json:"cycles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := table.Cycles["VIRAM"][core.CornerTurn]
	if want == 0 {
		t.Fatalf("table 3 has no VIRAM corner-turn cell: %+v", table.Cycles)
	}

	base := svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}
	points, sum := dsePost(t, d, svc.DSERequest{Base: base})
	if len(points) != 1 || points[0].State != svc.Done {
		t.Fatalf("empty exploration points = %+v", points)
	}
	if points[0].Cycles != want {
		t.Fatalf("DSE base point %d cycles, table 3 says %d", points[0].Cycles, want)
	}
	if len(sum.Frontier) != 1 {
		t.Fatalf("empty exploration frontier = %+v", sum.Frontier)
	}

	points, sum = dsePost(t, d, svc.DSERequest{
		Base: base,
		Axes: []svc.DSEAxis{{Param: "viram.Lanes", Values: []int{2, 4, 8, 16}}},
	})
	if len(points) != 4 || sum.Failed != 0 {
		t.Fatalf("sweep: %d points, summary %+v", len(points), sum)
	}
	byIndex := make(map[int]svc.DSEPoint, len(points))
	for _, pt := range points {
		if pt.State != svc.Done {
			t.Fatalf("point %d (%s): %s %q", pt.Index, pt.Label, pt.State, pt.Error)
		}
		byIndex[pt.Index] = pt
	}
	var prev uint64
	for i := 0; i < 4; i++ {
		pt, ok := byIndex[i]
		if !ok {
			t.Fatalf("index %d missing: %+v", i, points)
		}
		if i > 0 && pt.Cycles >= prev {
			t.Fatalf("index %d (%s): cycles %d did not improve on %d", i, pt.Label, pt.Cycles, prev)
		}
		prev = pt.Cycles
	}
	if byIndex[2].Cycles != want {
		t.Fatalf("lanes=8 sweep point %d cycles, paper cell %d", byIndex[2].Cycles, want)
	}
	if len(sum.Frontier) == 0 {
		t.Fatal("sweep summary has an empty Pareto frontier")
	}
}
