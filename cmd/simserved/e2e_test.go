package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/machines"
	"sigkern/internal/svc"
)

// e2eChaos matches the make-chaos fault mix: transient execute faults
// and latency injection, seeded so runs are reproducible. The pool's
// five-attempt retry absorbs transients, so jobs still terminate Done.
var e2eChaos = []string{
	"SIGKERN_FAULTS=pool.execute:transient:0.1,pool.execute:latency:0.05:2ms",
	"SIGKERN_FAULTS_SEED=42",
}

func e2eWorkload() core.Workload {
	return core.Workload{
		CornerTurn: cornerturn.Spec{Rows: 64, Cols: 64, BlockSize: 16},
		CSLC:       cslc.Spec{MainChannels: 1, AuxChannels: 1, Samples: 256, SubBands: 3, FFTSize: 64, Radix: fft.Radix4},
		Beam:       beamsteer.Spec{Elements: 64, Directions: 2, Dwells: 2, ShiftBits: 2, Rounding: 2},
	}
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simserved")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

type daemon struct {
	t   *testing.T
	cmd *exec.Cmd
	url string
}

// startDaemon launches the binary against the given journal directory
// on an ephemeral port (discovered via -addrfile) and waits until
// /healthz answers.
func startDaemon(t *testing.T, bin, journalDir string, extraArgs ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := []string{
		"-addr", "127.0.0.1:0", "-addrfile", addrFile,
		"-journal", journalDir, "-fsync", "always",
		"-workers", "2", "-queue", "64", "-timeout", "1m", "-drain", "20s"}
	args = append(args, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), e2eChaos...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{t: t, cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
			_ = d.cmd.Wait()
		}
		if t.Failed() {
			t.Logf("daemon logs:\n%s", logs.String())
		}
	})

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			d.url = "http://" + strings.TrimSpace(string(addr))
			if resp, err := http.Get(d.url + "/healthz"); err == nil {
				resp.Body.Close()
				return d
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon never became reachable; logs:\n%s", logs.String())
	return nil
}

// kill SIGKILLs the daemon: no drain, no snapshot, no fsync beyond
// what already happened — the crash the journal exists for.
func (d *daemon) kill() {
	d.t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatal(err)
	}
	_ = d.cmd.Wait()
}

// terminate sends SIGTERM and requires a clean (exit 0) drain.
func (d *daemon) terminate() {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		d.t.Fatalf("daemon did not drain cleanly: %v", err)
	}
}

func (d *daemon) submit(key string, spec svc.JobSpec, wait bool) (*http.Response, svc.Job) {
	d.t.Helper()
	body, _ := json.Marshal(spec)
	url := d.url + "/v1/jobs"
	if wait {
		url += "?wait=1&timeout=60s"
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		d.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	var job svc.Job
	_ = json.NewDecoder(resp.Body).Decode(&job)
	return resp, job
}

// TestE2EKillRestartDurability is the crash-recovery acceptance test:
// a chaos-armed daemon is SIGKILLed mid-flight, restarted on the same
// journal, and every accepted job must reach a terminal state with
// cycle counts bit-identical to an in-process reference run —
// idempotent resubmits landing on the original jobs, never duplicates.
// A final SIGTERM drain plus third start proves the snapshot path.
func TestE2EKillRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons; skipped in -short")
	}
	bin := buildDaemon(t)
	journalDir := t.TempDir()
	w := e2eWorkload()

	// Ground truth, computed in-process: the simulators are
	// deterministic, so the daemon — killed or not — must agree bit
	// for bit.
	type refJob struct {
		key    string
		spec   svc.JobSpec
		cycles uint64
	}
	var refs []refJob
	for _, name := range []string{"PPC", "AltiVec", "VIRAM", "Imagine", "Raw"} {
		m, err := machines.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []core.KernelID{core.CornerTurn, core.CSLC, core.BeamSteering} {
			res, err := core.Run(m, k, w)
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, refJob{
				key:    fmt.Sprintf("e2e-%s-%s", name, k),
				spec:   svc.JobSpec{Machine: name, Kernel: k, Workload: &w},
				cycles: res.Cycles,
			})
		}
	}

	// Phase 1: finish some jobs, leave the rest in flight, SIGKILL.
	d1 := startDaemon(t, bin, journalDir)
	finishedIDs := make(map[string]string)
	half := len(refs) / 2
	for _, r := range refs[:half] {
		resp, job := d1.submit(r.key, r.spec, true)
		if resp.StatusCode != http.StatusOK || job.State != svc.Done {
			t.Fatalf("%s: status %d state %s", r.key, resp.StatusCode, job.State)
		}
		if job.Result == nil || job.Result.Cycles != r.cycles {
			t.Fatalf("%s: daemon cycles %+v, reference %d", r.key, job.Result, r.cycles)
		}
		finishedIDs[r.key] = job.ID
	}
	for _, r := range refs[half:] {
		resp, _ := d1.submit(r.key, r.spec, false)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: async submit status %d", r.key, resp.StatusCode)
		}
	}
	d1.kill()

	// Phase 2: restart on the same journal. Every accepted job must
	// turn terminal; retries with the original keys find the original
	// jobs and the original cycle counts.
	d2 := startDaemon(t, bin, journalDir)
	for _, r := range refs {
		resp, job := d2.submit(r.key, r.spec, true)
		if resp.StatusCode != http.StatusOK || job.State != svc.Done || job.Result == nil {
			t.Fatalf("%s after restart: status %d job %+v", r.key, resp.StatusCode, job)
		}
		if job.Result.Cycles != r.cycles {
			t.Fatalf("%s after restart: cycles %d, reference %d — determinism broken",
				r.key, job.Result.Cycles, r.cycles)
		}
		if origID, ok := finishedIDs[r.key]; ok {
			if job.ID != origID {
				t.Fatalf("%s resubmit made new job %s, original was %s", r.key, job.ID, origID)
			}
			if resp.Header.Get("Idempotency-Replayed") != "true" {
				t.Fatalf("%s resubmit not marked replayed", r.key)
			}
		}
	}
	d2.terminate()

	// Phase 3: the SIGTERM drain wrote a snapshot; a third start
	// restores every job from it without replaying log records.
	d3 := startDaemon(t, bin, journalDir)
	var h svc.Health
	resp, err := http.Get(d3.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Journal == nil || !h.Journal.Replay.SnapshotLoaded || h.Journal.Replay.RecordsApplied != 0 {
		t.Fatalf("third start did not restore from snapshot: %+v", h.Journal)
	}
	var page svc.JobListPage
	resp, err = http.Get(d3.url + "/v1/jobs?limit=1000")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if page.Total != len(refs) {
		t.Fatalf("third start holds %d jobs, want %d (no duplicates, no losses)", page.Total, len(refs))
	}
	byKey := make(map[string]svc.Job, len(page.Jobs))
	for _, j := range page.Jobs {
		byKey[j.IdemKey] = j
	}
	for _, r := range refs {
		j, ok := byKey[r.key]
		if !ok || j.State != svc.Done || j.Result == nil || j.Result.Cycles != r.cycles {
			t.Fatalf("%s in snapshot restore: %+v (ok=%v), reference %d", r.key, j, ok, r.cycles)
		}
	}
	d3.terminate()
}

// TestE2EPprofFlag proves the profiling endpoints are served only when
// the operator opts in with -pprof.
func TestE2EPprofFlag(t *testing.T) {
	bin := buildDaemon(t)

	d := startDaemon(t, bin, t.TempDir(), "-pprof")
	resp, err := http.Get(d.url + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ with -pprof: status %d, want 200", resp.StatusCode)
	}
	d.terminate()

	d = startDaemon(t, bin, t.TempDir())
	resp, err = http.Get(d.url + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("/debug/pprof/ served without -pprof; profiling must be opt-in")
	}
	d.terminate()
}
