// Command simserved runs the simulation service as an HTTP daemon: a
// job queue over the five machine models and three paper kernels, with
// result memoization and an on-demand Table 3 endpoint.
//
// Usage:
//
//	simserved -addr :8080 -workers 8 -timeout 2m -journal /var/lib/simserved
//
// Endpoints:
//
//	POST /v1/jobs        {"machine":"VIRAM","kernel":"corner-turn"}; ?wait=1 blocks,
//	                     ?timeout=30s bounds the wait (malformed values are
//	                     400 with a structured param error); an
//	                     Idempotency-Key header makes retries safe.
//	                     ?tier=estimate answers synchronously from the
//	                     analytic roofline model in microseconds (no pool
//	                     admission, no journal write); the default
//	                     ?tier=simulate runs the simulator; ?tier=auto lets
//	                     the brownout controller pick per request — a
//	                     degraded answer carries Degraded:true in the body
//	                     and an X-Degraded: brownout header.
//	                     ?priority=interactive|batch picks the admission
//	                     class (batch is shed first under load), and an
//	                     X-Deadline-Budget header (a Go duration) caps the
//	                     total time the caller will wait: submissions that
//	                     cannot drain inside the budget are rejected 504
//	                     up front, and queued jobs whose budget expires are
//	                     dropped at pickup instead of burning a worker slot
//	POST /v1/dse         design-space exploration: one base spec plus
//	                     hardware-config deltas and/or named sweep axes
//	                     ({"base":{...},"axes":[{"param":"viram.Lanes",
//	                     "values":[2,4,8,16]}]}), expanded server-side,
//	                     admitted as one batch group, streamed back as
//	                     NDJSON per design point with a Pareto frontier
//	                     (cycles vs area proxy) in the summary line
//	GET  /v1/jobs        list jobs (?limit= page size, ?after= cursor)
//	GET  /v1/jobs/{id}   job status and result
//	GET  /v1/jobs/{id}/trace  job lifecycle trace (accepted/queued/started/...)
//	GET  /v1/tables/3    the paper's Table 3, machine-parallel (?format=text)
//	GET  /v1/roofline    predicted-cycles grid with per-cell model error
//	                     (Table 4, regenerated and extended); ?sim=0 for
//	                     model-only, ?format=text for the report table
//	GET  /metrics        metrics: flat text by default; ?format=prometheus
//	                     for Prometheus exposition, ?format=json for JSON
//	GET  /healthz        queue depth, breaker states, journal lag; 200 when
//	                     healthy, 503 when degraded
//	GET  /debug/pprof/   Go profiling endpoints (only with -pprof)
//
// Every request is logged via log/slog (-log-format selects text or
// json) with a request ID that is also echoed as X-Request-Id.
//
// Admission control: the job queue is bounded (-queue) and two-level —
// interactive work drains strictly before batch, and under saturation
// batch is shed first (429 with a priority-aware Retry-After estimate)
// so sweeps never starve interactive callers. Deadline budgets
// (X-Deadline-Budget) reject up front with 504 when the executed-job
// p99 says the queue cannot drain in time, and expired jobs are dropped
// at worker pickup. When the interactive queue, executed-job p99, or an
// open breaker says the shard is saturated, the brownout controller
// (hysteresis plus a minimum dwell, surfaced as the
// simserved_brownout_active gauge and in /healthz and /readyz) degrades
// ?tier=auto requests to the analytic estimate instead of queueing
// them. Per-machine circuit breakers answer 503 while a backend is
// tripping. Transient failures (including injected chaos
// faults, see SIGKERN_FAULTS in internal/faults) are retried with
// backoff, and every result served is checked against the memoized
// cycle count for its spec hash — a determinism violation is a hard
// error, never a silently wrong number. Every fresh simulation is also
// compared against the analytic roofline bound for its cell: a result
// outside the model-error envelope increments the
// simserved_model_drift_alerts_total counter and shows up in the
// per-cell simserved_cell_model_error_ratio gauge, so a simulator
// drifting from its own model fires a visible alert.
//
// Durability: with -journal DIR every job lifecycle transition is
// written to an append-only log before it is acknowledged (-fsync
// selects the flush policy). A restart replays the journal: finished
// jobs come back under their original IDs with their original results,
// and accepted-but-unfinished jobs are re-enqueued. Requests carrying
// the same Idempotency-Key (or, absent one, the same spec) after a
// crash are answered with the original job rather than duplicated.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// admitting, drains in-flight HTTP requests and simulations, then
// (when journaling) writes a snapshot and compacts the log so the next
// start replays from the snapshot alone, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sigkern/internal/faults"
	"sigkern/internal/journal"
	"sigkern/internal/machines"
	"sigkern/internal/obs"
	"sigkern/internal/svc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	addrFile := flag.String("addrfile", "", "write the bound listen address to this file (useful with -addr :0)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation slots")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job simulation timeout")
	memo := flag.Int("memo", 1024, "memoized results to keep (negative disables)")
	queue := flag.Int("queue", 256, "queued jobs before admissions are shed with 429")
	configPath := flag.String("config", "", "load machine configurations from this JSON file")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	journalDir := flag.String("journal", "", "journal job lifecycle to this directory (empty disables durability)")
	fsync := flag.String("fsync", "always", "journal flush policy: always, interval, or never")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "flush cadence when -fsync=interval")
	pprofOn := flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/ (off by default; exposes runtime internals)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	shard := flag.String("shard", "", "cluster shard name: prefixes job IDs (name-j000001-...) and labels /readyz, so a simgate can route by ID (empty = single-node)")
	flag.Parse()

	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "simserved: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	cfg := daemonConfig{
		addr: *addr, addrFile: *addrFile,
		workers: *workers, memo: *memo, queue: *queue,
		timeout: *timeout, drain: *drain,
		configPath: *configPath,
		journalDir: *journalDir, fsync: *fsync, fsyncEvery: *fsyncEvery,
		pprof: *pprofOn, logFormat: *logFormat, shard: *shard,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simserved: %v\n", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	addr, addrFile string
	workers        int
	memo           int
	queue          int
	timeout        time.Duration
	drain          time.Duration
	configPath     string
	journalDir     string
	fsync          string
	fsyncEvery     time.Duration
	pprof          bool
	logFormat      string
	shard          string
}

func run(cfg daemonConfig) error {
	logger := obs.NewLogger(os.Stderr, cfg.logFormat)
	opts := svc.Options{
		Pool: svc.PoolOptions{
			Workers:      cfg.workers,
			JobTimeout:   cfg.timeout,
			MemoCapacity: cfg.memo,
			QueueDepth:   cfg.queue,
		},
		Logger:  logger,
		ShardID: cfg.shard,
	}
	if cfg.configPath != "" {
		set, err := machines.LoadConfigSet(cfg.configPath)
		if err != nil {
			return err
		}
		factory, err := machines.FactoryFromConfigSet(set)
		if err != nil {
			return err
		}
		opts.Factory = factory
		opts.ConfigHash = set.Hash()
	}

	var service *svc.Service
	if cfg.journalDir != "" {
		policy, err := journal.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		service, err = svc.OpenDurable(opts, journal.Options{
			Dir:          cfg.journalDir,
			Sync:         policy,
			SyncInterval: cfg.fsyncEvery,
		})
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		rs := service.ReplayStats()
		logger.Info("journal replayed",
			"dir", cfg.journalDir, "fsync", cfg.fsync,
			"jobs_restored", rs.JobsRestored, "results_restored", rs.ResultsRestored,
			"requeued", rs.Requeued, "truncated_frames", rs.Truncations)
	} else {
		service = svc.NewService(opts)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		service.Close()
		return err
	}
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			service.Close()
			return fmt.Errorf("addrfile: %w", err)
		}
	}

	handler := service.Handler()
	if cfg.pprof {
		// Opt-in profiling: mount the pprof handlers in front of the
		// service mux. Off by default — the endpoints expose heap and
		// goroutine internals, so operators enable them deliberately.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if reg := service.Pool().Faults(); reg != nil {
		logger.Warn("chaos enabled", "armed_faults", len(reg.Armed()), "env", faults.EnvSpec)
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"addr", ln.Addr().String(), "workers", cfg.workers,
			"job_timeout", cfg.timeout.String(), "queue_depth", cfg.queue)
		if err := server.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		service.Close()
		return err
	case <-ctx.Done():
	}

	// Drain order matters: flip /readyz to 503 first so routers (and a
	// simgate's prober) stop sending new work while /healthz stays 200,
	// then stop admitting (HTTP shutdown), then finish in-flight
	// simulations and — when journaling — snapshot and compact so the
	// next start replays nothing but the snapshot.
	service.SetDraining(true)
	logger.Info("shutting down", "drain_deadline", cfg.drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		service.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	service.Close()
	if cfg.journalDir != "" {
		logger.Info("journal checkpointed", "dir", cfg.journalDir)
	}
	return <-errc
}
