// Command simserved runs the simulation service as an HTTP daemon: a
// job queue over the five machine models and three paper kernels, with
// result memoization and an on-demand Table 3 endpoint.
//
// Usage:
//
//	simserved -addr :8080 -workers 8 -timeout 2m
//
// Endpoints:
//
//	POST /v1/jobs        {"machine":"VIRAM","kernel":"corner-turn"}; ?wait=1 blocks
//	GET  /v1/jobs        list jobs
//	GET  /v1/jobs/{id}   job status and result
//	GET  /v1/tables/3    the paper's Table 3, machine-parallel (?format=text)
//	GET  /metrics        flat-text metrics
//	GET  /healthz        liveness probe
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight HTTP
// requests and running simulations drain before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sigkern/internal/machines"
	"sigkern/internal/svc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation slots")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job simulation timeout")
	memo := flag.Int("memo", 1024, "memoized results to keep (negative disables)")
	configPath := flag.String("config", "", "load machine configurations from this JSON file")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()

	if err := run(*addr, *workers, *memo, *timeout, *drain, *configPath); err != nil {
		fmt.Fprintf(os.Stderr, "simserved: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, memo int, timeout, drain time.Duration, configPath string) error {
	opts := svc.Options{
		Pool: svc.PoolOptions{
			Workers:      workers,
			JobTimeout:   timeout,
			MemoCapacity: memo,
		},
	}
	if configPath != "" {
		set, err := machines.LoadConfigSet(configPath)
		if err != nil {
			return err
		}
		opts.Factory = machines.FactoryFromConfigSet(set)
	}
	service := svc.NewService(opts)
	defer service.Close()

	server := &http.Server{
		Addr:              addr,
		Handler:           service.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("simserved: listening on %s (%d workers, %v job timeout)", addr, workers, timeout)
		if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("simserved: shutting down (draining up to %v)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}
