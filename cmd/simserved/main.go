// Command simserved runs the simulation service as an HTTP daemon: a
// job queue over the five machine models and three paper kernels, with
// result memoization and an on-demand Table 3 endpoint.
//
// Usage:
//
//	simserved -addr :8080 -workers 8 -timeout 2m
//
// Endpoints:
//
//	POST /v1/jobs        {"machine":"VIRAM","kernel":"corner-turn"}; ?wait=1 blocks,
//	                     ?timeout=30s bounds the wait
//	GET  /v1/jobs        list jobs
//	GET  /v1/jobs/{id}   job status and result
//	GET  /v1/tables/3    the paper's Table 3, machine-parallel (?format=text)
//	GET  /metrics        flat-text metrics
//	GET  /healthz        queue depth, breaker states, degraded flag
//
// Admission control: the job queue is bounded (-queue); once it fills,
// submissions are shed with 429 and a Retry-After estimate instead of
// queueing unboundedly. Per-machine circuit breakers answer 503 while a
// backend is tripping. Transient failures (including injected chaos
// faults, see SIGKERN_FAULTS in internal/faults) are retried with
// backoff, and every result served is checked against the memoized
// cycle count for its spec hash — a determinism violation is a hard
// error, never a silently wrong number.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight HTTP
// requests and running simulations drain before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sigkern/internal/faults"
	"sigkern/internal/machines"
	"sigkern/internal/svc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation slots")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job simulation timeout")
	memo := flag.Int("memo", 1024, "memoized results to keep (negative disables)")
	queue := flag.Int("queue", 256, "queued jobs before admissions are shed with 429")
	configPath := flag.String("config", "", "load machine configurations from this JSON file")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()

	if err := run(*addr, *workers, *memo, *queue, *timeout, *drain, *configPath); err != nil {
		fmt.Fprintf(os.Stderr, "simserved: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, memo, queue int, timeout, drain time.Duration, configPath string) error {
	opts := svc.Options{
		Pool: svc.PoolOptions{
			Workers:      workers,
			JobTimeout:   timeout,
			MemoCapacity: memo,
			QueueDepth:   queue,
		},
	}
	if configPath != "" {
		set, err := machines.LoadConfigSet(configPath)
		if err != nil {
			return err
		}
		opts.Factory = machines.FactoryFromConfigSet(set)
	}
	service := svc.NewService(opts)
	defer service.Close()

	server := &http.Server{
		Addr:              addr,
		Handler:           service.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if reg := service.Pool().Faults(); reg != nil {
		log.Printf("simserved: CHAOS ON — %d armed fault(s) from $%s", len(reg.Armed()), faults.EnvSpec)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("simserved: listening on %s (%d workers, %v job timeout, %d-deep admission queue)",
			addr, workers, timeout, queue)
		if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("simserved: shutting down (draining up to %v)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}
