#!/bin/sh
# check.sh — the repository's verification gate, run by `make check` and
# CI: compile everything, vet, then the full test suite under the race
# detector (the service worker pool is exercised concurrently).
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

# staticcheck is optional locally (CI installs it); the gate still
# passes on machines without the binary rather than forcing a download.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ./..."
    staticcheck ./...
else
    echo "== staticcheck: not installed, skipping (CI runs it)"
fi

# govulncheck is gated the same way: run it when the binary is present,
# skip (loudly) when it is not, so air-gapped machines still pass.
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck ./..."
    govulncheck ./...
else
    echo "== govulncheck: not installed, skipping (CI runs it)"
fi

echo "== go test -race ./..."
go test -race ./...

echo "== dse-smoke"
./scripts/dse_smoke.sh

echo "check: OK"
