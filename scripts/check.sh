#!/bin/sh
# check.sh — the repository's verification gate, run by `make check` and
# CI: compile everything, vet, then the full test suite under the race
# detector (the service worker pool is exercised concurrently).
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
