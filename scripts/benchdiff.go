// Command benchdiff converts `go test -bench` output into a stable JSON
// snapshot and compares two snapshots for regressions.
//
// Emit mode parses benchmark output and writes JSON to stdout:
//
//	go test -run='^$' -bench=. -benchmem . > bench.txt
//	go run scripts/benchdiff.go -emit bench.txt > BENCH.json
//
// Compare mode diffs two snapshots (baseline first) and exits non-zero
// on a regression:
//
//	go run scripts/benchdiff.go BENCH_PR4.json BENCH.json
//
// Two gates apply, matching what the simulator guarantees:
//
//   - sim-kcycles must be EXACTLY equal. The machine models are
//     bit-deterministic; any drift in simulated cycles is a correctness
//     bug, not noise, so no tolerance is given.
//   - ns/op may not regress by more than -tol (default 15%). Wall-clock
//     measures the simulator's own speed and is noisy, so only large
//     regressions fail.
//
// Benchmarks present in only one snapshot are reported but never fail
// the diff (the suite is allowed to grow and shrink).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the serialized form of one benchmark run.
type Snapshot struct {
	Schema string `json:"schema"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// metric name ("ns/op", "sim-kcycles", "allocs/op", ...) to value.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

const schemaID = "sigkern-bench/v1"

// benchLine matches one result line: name, iteration count, then
// value/unit pairs ("209218093 ns/op", "28098 sim-kcycles", ...).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// cpuSuffix strips the -GOMAXPROCS tail go test appends to names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	emit := flag.Bool("emit", false, "parse `go test -bench` output (one file argument) and write a JSON snapshot to stdout")
	tol := flag.Float64("tol", 0.15, "allowed fractional ns/op regression before the diff fails")
	flag.Parse()

	var err error
	if *emit {
		err = runEmit(flag.Args())
	} else {
		err = runCompare(flag.Args(), *tol)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func runEmit(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("emit mode wants exactly one bench-output file, got %d args", len(args))
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()

	snap := Snapshot{Schema: schemaID, Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		metrics, err := parseMetrics(m[3])
		if err != nil {
			return fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		// -count>1 runs repeat names; keep the minimum ns/op line (least
		// noisy) and first-seen values for everything else.
		if prev, ok := snap.Benchmarks[name]; ok {
			if metrics["ns/op"] < prev["ns/op"] {
				snap.Benchmarks[name] = metrics
			}
			continue
		}
		snap.Benchmarks[name] = metrics
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", args[0])
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// parseMetrics splits "209218093 ns/op\t28098 sim-kcycles ..." into a
// metric map.
func parseMetrics(s string) (map[string]float64, error) {
	fields := strings.Fields(s)
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit field count %d", len(fields))
	}
	out := make(map[string]float64, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", fields[i], err)
		}
		out[fields[i+1]] = v
	}
	return out, nil
}

func runCompare(args []string, tol float64) error {
	if len(args) != 2 {
		return fmt.Errorf("compare mode wants two snapshot files (baseline new), got %d args", len(args))
	}
	base, err := loadSnapshot(args[0])
	if err != nil {
		return err
	}
	cur, err := loadSnapshot(args[1])
	if err != nil {
		return err
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	compared := 0
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		if c == nil {
			fmt.Printf("  %-55s only in baseline (skipped)\n", name)
			continue
		}
		compared++
		if bk, ok := b["sim-kcycles"]; ok {
			if ck, cok := c["sim-kcycles"]; cok && bk != ck {
				failures = append(failures, fmt.Sprintf(
					"%s: sim-kcycles drifted %.4g -> %.4g (simulated cycles must be bit-identical)", name, bk, ck))
			}
		}
		bn, cn := b["ns/op"], c["ns/op"]
		delta := math.NaN()
		if bn > 0 {
			delta = (cn - bn) / bn
			if delta > tol {
				failures = append(failures, fmt.Sprintf(
					"%s: ns/op regressed %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)",
					name, bn, cn, 100*delta, 100*tol))
			}
		}
		fmt.Printf("  %-55s ns/op %12.4g -> %12.4g (%+.1f%%)  allocs/op %g -> %g\n",
			name, bn, cn, 100*delta, b["allocs/op"], c["allocs/op"])
	}
	for name := range cur.Benchmarks {
		if base.Benchmarks[name] == nil {
			fmt.Printf("  %-55s only in new snapshot (skipped)\n", name)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no overlapping benchmarks between %s and %s", args[0], args[1])
	}
	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		return fmt.Errorf("%d regression(s)", len(failures))
	}
	fmt.Printf("\nok: %d benchmarks compared, no sim-cycle drift, no ns/op regression beyond %.0f%%\n", compared, 100*tol)
	return nil
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != schemaID {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, schemaID)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: empty snapshot", path)
	}
	return &s, nil
}
