#!/bin/sh
# dse_smoke.sh — the design-space-exploration gate, run by
# `make dse-smoke`, scripts/check.sh, and CI: drive a small sweep
# through a real simserved process and require the base point to match
# /v1/tables/3 bit for bit and the VIRAM lanes sweep to improve
# monotonically with a non-empty Pareto frontier (TestDSESmoke).
set -eu
cd "$(dirname "$0")/.."

go test -race -count=1 -run '^TestDSESmoke$' ./cmd/simserved/
