#!/usr/bin/env bash
# bench.sh: run the performance-tracking benchmark set and emit a JSON
# snapshot (default BENCH.json) for scripts/benchdiff.go.
#
# The set is split in three because the right benchtime differs:
#   - simulator benchmarks (Table 3 corner turn + CSLC): a handful of
#     fixed iterations — each iteration is a full deterministic
#     simulation, so more iterations only burn time;
#   - service benchmarks (BenchmarkServiceThroughput): time-based, the
#     usual regime for nanosecond-scale operations;
#   - grid benchmarks (BenchmarkBatchGrid, BenchmarkDSEGrid): one fixed
#     iteration — each iteration drives a full 1,000-cell machine×kernel
#     grid (or a whole design-space sweep), and the sequential-jobs leg
#     alone takes seconds, so time-based sampling would just rerun
#     multi-second grids.
#
# Each benchmark runs -count times and benchdiff keeps the best (min
# ns/op) run per benchmark: min-of-N filters out scheduler noise, which
# matters because the 15% wall-clock gate is tighter than single-sample
# jitter on a busy machine. Simulated cycle counts are identical across
# runs regardless.
#
# Environment knobs:
#   BENCH_COUNT    (default 3)     repetitions per benchmark (min is kept)
#   SIM_BENCHTIME  (default 20x)   benchtime for the simulator set
#   SVC_BENCHTIME  (default 0.5s)  benchtime for the service set
#   GRID_BENCHTIME (default 1x)    benchtime for the batch-grid set
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -bench='Table3CornerTurn|Table3CSLC' -benchmem \
    -count="${BENCH_COUNT:-3}" -benchtime="${SIM_BENCHTIME:-20x}" . | tee "$tmp"
go test -run='^$' -bench='ServiceThroughput|EstimateTier' -benchmem \
    -count="${BENCH_COUNT:-3}" -benchtime="${SVC_BENCHTIME:-0.5s}" . | tee -a "$tmp"
go test -run='^$' -bench='BatchGrid|DSEGrid' -benchmem \
    -count="${BENCH_COUNT:-3}" -benchtime="${GRID_BENCHTIME:-1x}" . | tee -a "$tmp"

go run scripts/benchdiff.go -emit "$tmp" > "$out"
echo "wrote $out"
