// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benchmarks for the design choices
// the paper's analysis calls out. Each benchmark runs the full simulator
// stack and reports the simulated cycle counts as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every number the tables and figures need. Wall-clock ns/op
// measures the simulator itself; the paper's quantities are the
// "sim-kcycles" (and speedup) metrics.
package sigkern

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/imagine"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/equalize"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/matmul"
	"sigkern/internal/kernels/pfb"
	"sigkern/internal/machines"
	"sigkern/internal/perfmodel"
	"sigkern/internal/ppc"
	"sigkern/internal/rawsim"
	"sigkern/internal/svc"
	"sigkern/internal/viram"
)

// benchKernel runs one kernel on one machine per iteration and reports
// the simulated kilocycles.
func benchKernel(b *testing.B, m core.Machine, k core.KernelID) {
	b.Helper()
	w := core.PaperWorkload()
	var last core.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.Run(m, k, w)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.KCycles(), "sim-kcycles")
	b.ReportMetric(last.OpsPerCycle(), "sim-ops/cycle")
}

// --- Table 1: peak throughput -------------------------------------------

func BenchmarkTable1PeakThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := perfmodel.Table1(); len(rows) != 5 {
			b.Fatal("Table 1 incomplete")
		}
	}
	for _, t := range perfmodel.Table1() {
		b.ReportMetric(t.Compute, t.Machine+"-compute-w/c")
	}
}

// --- Table 2: processor parameters ---------------------------------------

func BenchmarkTable2Parameters(b *testing.B) {
	ms := machines.All()
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			if m.Params().ClockMHz == 0 {
				b.Fatal("missing clock")
			}
		}
	}
	for _, m := range ms {
		b.ReportMetric(m.Params().PeakGFLOPS, m.Name()+"-GFLOPS")
	}
}

// --- Table 3: experimental results (one bench per cell group) ------------

func BenchmarkTable3CornerTurn(b *testing.B) {
	for _, m := range machines.All() {
		b.Run(m.Name(), func(b *testing.B) { benchKernel(b, m, core.CornerTurn) })
	}
}

func BenchmarkTable3CSLC(b *testing.B) {
	for _, m := range machines.All() {
		b.Run(m.Name(), func(b *testing.B) { benchKernel(b, m, core.CSLC) })
	}
}

func BenchmarkTable3BeamSteering(b *testing.B) {
	for _, m := range machines.All() {
		b.Run(m.Name(), func(b *testing.B) { benchKernel(b, m, core.BeamSteering) })
	}
}

// --- Table 4: performance model vs measured ------------------------------

func BenchmarkTable4CornerTurnModel(b *testing.B) {
	spec := cornerturn.PaperSpec()
	measured := make(map[string]uint64)
	for _, m := range machines.Research() {
		r, err := m.RunCornerTurn(spec)
		if err != nil {
			b.Fatal(err)
		}
		measured[m.Name()] = r.Cycles
	}
	b.ResetTimer()
	var rows []perfmodel.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = perfmodel.Table4(spec, measured)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Ratio(), r.Machine+"-measured/peak")
	}
}

// --- Figures 8 and 9: speedups over the AltiVec baseline -----------------

func benchSpeedups(b *testing.B, timeDomain bool) {
	b.Helper()
	var sr *core.StudyResults
	for i := 0; i < b.N; i++ {
		var err error
		sr, err = core.RunStudy(machines.All(), core.PaperWorkload())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range core.Kernels() {
		for _, name := range []string{"VIRAM", "Imagine", "Raw"} {
			var s float64
			if timeDomain {
				s = sr.SpeedupTime(machines.Baseline, name, k)
			} else {
				s = sr.SpeedupCycles(machines.Baseline, name, k)
			}
			b.ReportMetric(s, name+"-"+string(k)+"-speedup")
		}
	}
}

func BenchmarkFigure8SpeedupCycles(b *testing.B) { benchSpeedups(b, false) }

func BenchmarkFigure9SpeedupTime(b *testing.B) { benchSpeedups(b, true) }

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationRawFFTRadix: radix-2 vs register-spilling radix-4 on
// Raw (Section 3.2: why Raw uses radix-2).
func BenchmarkAblationRawFFTRadix(b *testing.B) {
	m := rawsim.New(rawsim.DefaultConfig())
	spec := cslc.PaperSpec(fft.Radix2)
	b.Run("radix2", func(b *testing.B) {
		var r core.Result
		for i := 0; i < b.N; i++ {
			var err error
			r, err = m.RunCSLCImbalanced(spec)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.KCycles(), "sim-kcycles")
	})
	b.Run("radix4-spilling", func(b *testing.B) {
		var r core.Result
		for i := 0; i < b.N; i++ {
			var err error
			r, err = m.RunCSLCRadix4(spec)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.KCycles(), "sim-kcycles")
	})
}

// BenchmarkAblationRawLoadBalance: 73 sets on 16 tiles vs the paper's
// perfect-balance extrapolation (Section 4.3).
func BenchmarkAblationRawLoadBalance(b *testing.B) {
	m := rawsim.New(rawsim.DefaultConfig())
	spec := cslc.PaperSpec(fft.Radix2)
	for _, variant := range []struct {
		name string
		run  func() (core.Result, error)
	}{
		{"imbalanced-73-sets", func() (core.Result, error) { return m.RunCSLCImbalanced(spec) }},
		{"perfect-balance", func() (core.Result, error) { return m.RunCSLC(spec) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = variant.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkAblationRawStreamFFT: cache-mode MIMD CSLC vs the
// static-network streaming variant (Section 4.3's ~70% FFT improvement).
func BenchmarkAblationRawStreamFFT(b *testing.B) {
	m := rawsim.New(rawsim.DefaultConfig())
	spec := cslc.PaperSpec(fft.Radix2)
	for _, variant := range []struct {
		name string
		run  func() (core.Result, error)
	}{
		{"cache-mode", func() (core.Result, error) { return m.RunCSLCImbalanced(spec) }},
		{"stream-mode", func() (core.Result, error) { return m.RunCSLCStream(spec) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = variant.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkAblationImaginePipelining: the stream-descriptor limitation
// vs full software pipelining on the corner turn (Section 4.2).
func BenchmarkAblationImaginePipelining(b *testing.B) {
	for _, full := range []bool{false, true} {
		name := "descriptor-limited"
		if full {
			name = "fully-pipelined"
		}
		b.Run(name, func(b *testing.B) {
			cfg := imagine.DefaultConfig()
			cfg.FullPipelining = full
			m := imagine.New(cfg)
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = m.RunCornerTurn(cornerturn.PaperSpec())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkAblationImagineSRFTables: beam-steering tables re-read from
// DRAM vs resident in the SRF (Section 4.4's ~2x claim).
func BenchmarkAblationImagineSRFTables(b *testing.B) {
	m := imagine.New(imagine.DefaultConfig())
	spec := beamsteer.PaperSpec()
	for _, variant := range []struct {
		name string
		run  func() (core.Result, error)
	}{
		{"tables-from-dram", func() (core.Result, error) { return m.RunBeamSteering(spec) }},
		{"tables-in-srf", func() (core.Result, error) { return m.RunBeamSteeringSRFTables(spec) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = variant.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkAblationImagineIndependentFFTs: parallel FFT with
// inter-cluster communication vs independent per-cluster FFTs
// (Section 4.3's uncompleted alternative).
func BenchmarkAblationImagineIndependentFFTs(b *testing.B) {
	m := imagine.New(imagine.DefaultConfig())
	spec := cslc.PaperSpec(fft.MixedRadix42)
	for _, variant := range []struct {
		name string
		run  func() (core.Result, error)
	}{
		{"parallel-fft", func() (core.Result, error) { return m.RunCSLC(spec) }},
		{"independent-ffts", func() (core.Result, error) { return m.RunCSLCIndependentFFTs(spec) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = variant.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkAblationVIRAMAddrGens: strided corner-turn throughput vs the
// number of address generators (Section 4.2's 24% factor).
func BenchmarkAblationVIRAMAddrGens(b *testing.B) {
	for _, ag := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "2-addrgens", 4: "4-addrgens", 8: "8-addrgens"}[ag], func(b *testing.B) {
			cfg := viram.DefaultConfig()
			cfg.DRAM.AddrGens = ag
			m := viram.New(cfg)
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = m.RunCornerTurn(cornerturn.PaperSpec())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkAblationVIRAMPadding: the matrix-row padding that spreads the
// strided walk across DRAM banks (Section 3.1).
func BenchmarkAblationVIRAMPadding(b *testing.B) {
	for _, pad := range []int{0, 8} {
		name := "padded-rows"
		if pad == 0 {
			name = "unpadded-rows"
		}
		b.Run(name, func(b *testing.B) {
			cfg := viram.DefaultConfig()
			cfg.PadWords = pad
			m := viram.New(cfg)
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = m.RunCornerTurn(cornerturn.PaperSpec())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkAblationAltiVec: scalar vs AltiVec per kernel (Section 4.5's
// ~6x CSLC, ~2x beam steering, ~1x corner turn).
func BenchmarkAblationAltiVec(b *testing.B) {
	for _, v := range []ppc.Variant{ppc.Scalar, ppc.AltiVec} {
		m := ppc.New(ppc.DefaultConfig(v))
		for _, k := range core.Kernels() {
			b.Run(v.String()+"/"+string(k), func(b *testing.B) {
				benchKernel(b, m, k)
			})
		}
	}
}

// --- Extension kernel: matrix multiply ------------------------------------

// BenchmarkExtensionMatMul runs the high-arithmetic-intensity extension
// kernel on every machine (the Raw-related-work citation [16]).
func BenchmarkExtensionMatMul(b *testing.B) {
	spec := matmul.DefaultSpec()
	for _, m := range machines.All() {
		mr, ok := m.(core.MatMulRunner)
		if !ok {
			b.Fatalf("%s lacks matmul", m.Name())
		}
		b.Run(m.Name(), func(b *testing.B) {
			var r core.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				r, err = mr.RunMatMul(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
			b.ReportMetric(r.OpsPerCycle(), "sim-ops/cycle")
		})
	}
}

// BenchmarkExtensionPFB runs the polyphase channelizer (the pipeline
// stage the paper's Section 4.4 names) on every machine.
func BenchmarkExtensionPFB(b *testing.B) {
	w := pfb.DefaultWorkload()
	type runner interface {
		RunPFB(pfb.Workload) (core.Result, error)
	}
	for _, m := range machines.All() {
		pr, ok := m.(runner)
		if !ok {
			b.Fatalf("%s lacks RunPFB", m.Name())
		}
		b.Run(m.Name(), func(b *testing.B) {
			var r core.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				r, err = pr.RunPFB(w)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
			b.ReportMetric(r.OpsPerCycle(), "sim-ops/cycle")
		})
	}
}

// BenchmarkAblationRawDMA: cache-mode CSLC vs the streaming-DMA variant
// (Section 4.3: "most of this stalling could have been eliminated").
func BenchmarkAblationRawDMA(b *testing.B) {
	m := rawsim.New(rawsim.DefaultConfig())
	spec := cslc.PaperSpec(fft.Radix2)
	for _, variant := range []struct {
		name string
		run  func() (core.Result, error)
	}{
		{"cache-mode", func() (core.Result, error) { return m.RunCSLCImbalanced(spec) }},
		{"streaming-dma", func() (core.Result, error) { return m.RunCSLCDMA(spec) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = variant.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkAblationRawBeamSteeringMode: stream mode (measured) vs the
// easy-to-program MIMD cache mode (Section 2.4's two modes of using Raw).
func BenchmarkAblationRawBeamSteeringMode(b *testing.B) {
	m := rawsim.New(rawsim.DefaultConfig())
	spec := beamsteer.PaperSpec()
	for _, variant := range []struct {
		name string
		run  func() (core.Result, error)
	}{
		{"stream-mode", func() (core.Result, error) { return m.RunBeamSteering(spec) }},
		{"mimd-cache-mode", func() (core.Result, error) { return m.RunBeamSteeringMIMD(spec) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = variant.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkAblationImaginePipelinedBeamSteering: isolated vs SRF-tables
// vs fully pipelined (Section 4.4's progression).
func BenchmarkAblationImaginePipelinedBeamSteering(b *testing.B) {
	m := imagine.New(imagine.DefaultConfig())
	spec := beamsteer.PaperSpec()
	for _, variant := range []struct {
		name string
		run  func() (core.Result, error)
	}{
		{"isolated", func() (core.Result, error) { return m.RunBeamSteering(spec) }},
		{"srf-tables", func() (core.Result, error) { return m.RunBeamSteeringSRFTables(spec) }},
		{"pipelined", func() (core.Result, error) { return m.RunBeamSteeringPipelined(spec) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = variant.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkExtensionPipeline: the full three-stage pipeline on Imagine.
func BenchmarkExtensionPipeline(b *testing.B) {
	m := imagine.New(imagine.DefaultConfig())
	w := pfb.DefaultWorkload()
	var r core.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		r, err = m.RunPipeline(w, beamsteer.PaperSpec(), equalize.DefaultSpec())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.KCycles(), "sim-kcycles")
	b.ReportMetric(r.OpsPerCycle(), "sim-ops/cycle")
}

// --- Service throughput ----------------------------------------------------

// stubMachine is a core.Machine whose kernels complete instantly with a
// fixed cycle count, so the service-throughput benchmarks measure the
// service layer itself (hashing, memoization, coalescing, queueing)
// rather than simulator time.
type stubMachine struct{ name string }

func (s stubMachine) Name() string        { return s.name }
func (s stubMachine) Params() core.Params { return core.Params{ClockMHz: 1} }
func (s stubMachine) RunCornerTurn(cornerturn.Spec) (core.Result, error) {
	return core.Result{Machine: s.name, Kernel: core.CornerTurn, Cycles: 4242, Verified: true}, nil
}
func (s stubMachine) RunCSLC(cslc.Spec) (core.Result, error) {
	return core.Result{Machine: s.name, Kernel: core.CSLC, Cycles: 4242, Verified: true}, nil
}
func (s stubMachine) RunBeamSteering(beamsteer.Spec) (core.Result, error) {
	return core.Result{Machine: s.name, Kernel: core.BeamSteering, Cycles: 4242, Verified: true}, nil
}

// BenchmarkServiceThroughput measures the three hot paths of the
// simulation service: memo hits (the sharded table is the contended
// structure, so ops/sec should scale with GOMAXPROCS), in-flight
// coalescing (attaching to a running execution), and cold submissions
// (the full queue/worker/memo-store lifecycle on a stub backend).
func BenchmarkServiceThroughput(b *testing.B) {
	newPool := func() *svc.Pool {
		return svc.NewPool(svc.PoolOptions{
			Workers:      runtime.GOMAXPROCS(0),
			QueueDepth:   4096,
			MemoCapacity: 4096,
		})
	}
	stubTask := func(key string) svc.Task {
		return svc.Task{
			Label:   "stub",
			MemoKey: key,
			Run: func(context.Context) (core.Result, error) {
				return core.Result{Machine: "stub", Kernel: core.CornerTurn, Cycles: 4242, Verified: true}, nil
			},
		}
	}
	ctx := context.Background()

	b.Run("cache-hit", func(b *testing.B) {
		p := newPool()
		defer p.Close()
		keys := make([]string, 64)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%02d", i)
			fut, err := p.Submit(stubTask(keys[i]))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fut.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				fut, err := p.Submit(stubTask(keys[i%len(keys)]))
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := fut.Wait(ctx); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})

	b.Run("coalesced", func(b *testing.B) {
		p := newPool()
		defer p.Close()
		release := make(chan struct{})
		lead, err := p.Submit(svc.Task{
			Label:   "leader",
			MemoKey: "shared",
			Run: func(context.Context) (core.Result, error) {
				<-release
				return core.Result{Cycles: 7, Verified: true}, nil
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := p.Submit(stubTask("shared"))
			if err != nil {
				b.Fatal(err)
			}
			if f != lead {
				b.Fatal("submission did not coalesce onto the leader")
			}
		}
		b.StopTimer()
		close(release)
		if _, err := lead.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	})

	b.Run("cold", func(b *testing.B) {
		p := newPool()
		defer p.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fut, err := p.Submit(stubTask(fmt.Sprintf("cold-%d", i)))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fut.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The same memo-hit path end to end through svc.Service: spec
	// normalization, canonical hashing, and job registration on top of
	// the pool hit.
	b.Run("service-cache-hit", func(b *testing.B) {
		s := svc.NewService(svc.Options{
			Pool:    svc.PoolOptions{Workers: runtime.GOMAXPROCS(0), QueueDepth: 4096, MemoCapacity: 4096},
			Factory: func(name string) (core.Machine, error) { return stubMachine{name: name}, nil },
			// Keep the registry small: every submit registers a job, and
			// eviction scans the registry, so a large MaxJobs would measure
			// registry bookkeeping instead of the memo-hit path.
			MaxJobs: 64,
		})
		defer s.Close()
		spec := svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}
		j, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Wait(ctx, j.ID); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := s.Submit(spec); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// --- Batch grid fast path --------------------------------------------------

// batchGridSpecs builds a 1,000-cell grid of distinct real-simulation
// specs: 5 machines x 2 kernels x 100 workload variants. Every cell
// hashes differently (the variant changes the active kernel's own
// dimensions), so a cold run means 1,000 real simulator executions.
func batchGridSpecs() []svc.JobSpec {
	names := []string{"PPC", "AltiVec", "VIRAM", "Imagine", "Raw"}
	kernels := []core.KernelID{core.CornerTurn, core.BeamSteering}
	specs := make([]svc.JobSpec, 0, len(names)*len(kernels)*100)
	for _, name := range names {
		for _, k := range kernels {
			for v := 0; v < 100; v++ {
				w := core.Workload{
					CornerTurn: cornerturn.Spec{Rows: 16 << (v % 3), Cols: 16 * (v/3 + 1), BlockSize: 16},
					CSLC:       cslc.Spec{MainChannels: 1, AuxChannels: 1, Samples: 256, SubBands: 3, FFTSize: 64, Radix: fft.Radix4},
					Beam:       beamsteer.Spec{Elements: 32 + 8*(v%10), Directions: 2 + v/10, Dwells: 2, ShiftBits: 2, Rounding: 2},
				}
				specs = append(specs, svc.JobSpec{Machine: name, Kernel: k, Workload: &w})
			}
		}
	}
	return specs
}

func batchBenchService() *svc.Service {
	return svc.NewService(svc.Options{
		Pool: svc.PoolOptions{
			Workers:      runtime.GOMAXPROCS(0),
			QueueDepth:   4096,
			MemoCapacity: 4096,
		},
		MaxJobs: 4096,
	})
}

// drainBatch submits specs as one group and drains the results,
// returning the summed simulated cycles (the drift gate: deterministic
// across every run and every path).
func drainBatch(b *testing.B, s *svc.Service, specs []svc.JobSpec) uint64 {
	b.Helper()
	run, err := s.SubmitBatch(context.Background(), specs, svc.BatchOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var sum uint64
	n := 0
	for br := range run.Results() {
		if br.State != svc.Done || br.Result == nil {
			b.Fatalf("cell %d: %s %q", br.Index, br.State, br.Error)
		}
		sum += br.Result.Cycles
		n++
	}
	if n != len(specs) {
		b.Fatalf("drained %d cells, want %d", n, len(specs))
	}
	return sum
}

// BenchmarkBatchGrid measures the grid fast path against its
// sequential baseline on the same 1,000-cell grid of real simulations.
// ns/op is the wall-clock for the WHOLE grid; "sim-kcycles" is the
// grid's summed simulated cycles, identical across all four legs and
// exactly gated by benchdiff. The acceptance target is cold-grid
// ns/op at least 5x below sequential-jobs ns/op.
func BenchmarkBatchGrid(b *testing.B) {
	specs := batchGridSpecs()
	if len(specs) != 1000 {
		b.Fatalf("grid has %d cells, want 1000", len(specs))
	}

	// Sequential baseline: one job at a time through the service's
	// single-submit path, waiting for each result — the workflow the
	// batch API replaces.
	b.Run("sequential-jobs-1000", func(b *testing.B) {
		ctx := context.Background()
		var sum uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := batchBenchService()
			b.StartTimer()
			sum = 0
			for _, spec := range specs {
				j, err := s.Submit(spec)
				if err != nil {
					b.Fatal(err)
				}
				done, err := s.Wait(ctx, j.ID)
				if err != nil {
					b.Fatal(err)
				}
				sum += done.Result.Cycles
			}
			b.StopTimer()
			s.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(sum)/1e3, "sim-kcycles")
	})

	b.Run("cold-1000", func(b *testing.B) {
		var sum uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := batchBenchService()
			b.StartTimer()
			sum = drainBatch(b, s, specs)
			b.StopTimer()
			s.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(sum)/1e3, "sim-kcycles")
	})

	b.Run("warm-memo-1000", func(b *testing.B) {
		s := batchBenchService()
		defer s.Close()
		drainBatch(b, s, specs) // warm every cell
		var sum uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum = drainBatch(b, s, specs)
		}
		b.ReportMetric(float64(sum)/1e3, "sim-kcycles")
	})

	// Mixed: half the grid warmed, half cold — the incremental-sweep
	// shape (rerunning a study after touching half the configs).
	b.Run("mixed-1000", func(b *testing.B) {
		var sum uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := batchBenchService()
			drainBatch(b, s, specs[:len(specs)/2])
			b.StartTimer()
			sum = drainBatch(b, s, specs)
			b.StopTimer()
			s.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(sum)/1e3, "sim-kcycles")
	})
}

// dseGridSpecs expands the benchmark exploration: a VIRAM corner-turn
// base crossed over lanes x MVL, 16 design points. Expansion goes
// through the real svc.DSERequest path so the benchmark covers axis
// application, normalization, and config hashing — not hand-built
// specs.
func dseGridSpecs(b *testing.B) []svc.JobSpec {
	b.Helper()
	w := core.Workload{
		CornerTurn: cornerturn.Spec{Rows: 128, Cols: 128, BlockSize: 16},
		CSLC:       cslc.Spec{MainChannels: 1, AuxChannels: 1, Samples: 256, SubBands: 3, FFTSize: 64, Radix: fft.Radix4},
		Beam:       beamsteer.Spec{Elements: 64, Directions: 2, Dwells: 2, ShiftBits: 2, Rounding: 2},
	}
	req := svc.DSERequest{
		Base: svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w},
		Axes: []svc.DSEAxis{
			{Param: "viram.Lanes", Values: []int{2, 4, 8, 16}},
			{Param: "viram.MVL", Values: []int{32, 64, 128, 256}},
		},
	}
	designs, err := req.Expand()
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]svc.JobSpec, len(designs))
	for i, d := range designs {
		specs[i] = d.Spec
	}
	return specs
}

// BenchmarkDSEGrid measures the design-space-exploration path: the
// 16-point lanes x MVL sweep through the same batch fast path /v1/dse
// uses, cold and memo-warm, plus the expansion machinery alone at the
// 512-point cap. "sim-kcycles" is the sweep's summed simulated cycles
// — identical across legs and runs, exact-gated by benchdiff.
func BenchmarkDSEGrid(b *testing.B) {
	specs := dseGridSpecs(b)
	if len(specs) != 16 {
		b.Fatalf("sweep has %d points, want 16", len(specs))
	}

	// Expansion alone at the point cap: 8x8x8 axis values = 512
	// configs validated, canonicalized, and labeled — no simulation.
	b.Run("expand-512", func(b *testing.B) {
		vals := make([]int, 8)
		for i := range vals {
			vals[i] = i + 1
		}
		lanes := []int{1, 2, 3, 4, 6, 8, 12, 16}
		req := svc.DSERequest{
			Base: svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn},
			Axes: []svc.DSEAxis{
				{Param: "viram.Lanes", Values: lanes},
				{Param: "viram.MVL", Values: []int{16, 32, 48, 64, 96, 128, 192, 256}},
				{Param: "ppc.IssueWidth", Values: vals},
			},
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			designs, err := req.Expand()
			if err != nil {
				b.Fatal(err)
			}
			if len(designs) != 512 {
				b.Fatalf("expanded %d points, want 512", len(designs))
			}
		}
	})

	b.Run("cold-16", func(b *testing.B) {
		var sum uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := batchBenchService()
			b.StartTimer()
			sum = drainBatch(b, s, specs)
			b.StopTimer()
			s.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(sum)/1e3, "sim-kcycles")
	})

	b.Run("warm-memo-16", func(b *testing.B) {
		s := batchBenchService()
		defer s.Close()
		drainBatch(b, s, specs) // warm every point
		var sum uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum = drainBatch(b, s, specs)
		}
		b.ReportMetric(float64(sum)/1e3, "sim-kcycles")
	})
}

// BenchmarkAblationVIRAMCornerTurnFormulation: strided loads + padding
// (the paper's implementation) vs unit-stride loads with in-register
// permutes.
func BenchmarkAblationVIRAMCornerTurnFormulation(b *testing.B) {
	m := viram.New(viram.DefaultConfig())
	spec := cornerturn.PaperSpec()
	for _, variant := range []struct {
		name string
		run  func() (core.Result, error)
	}{
		{"strided-loads", func() (core.Result, error) { return m.RunCornerTurn(spec) }},
		{"register-permutes", func() (core.Result, error) { return m.RunCornerTurnPermute(spec) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = variant.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KCycles(), "sim-kcycles")
		})
	}
}

// BenchmarkEstimateTier quantifies the quality-tier gap the estimate
// tier exists for: answering one job from the analytic roofline model
// (normalize, hash, memo, synthesize) versus actually running the
// simulator cold for the same kind of question. The acceptance target
// is >=100x lower ns/op on the estimate leg; in practice the gap is
// orders of magnitude wider.
func BenchmarkEstimateTier(b *testing.B) {
	b.Run("estimate", func(b *testing.B) {
		s := svc.NewService(svc.Options{Pool: svc.PoolOptions{Workers: 1}})
		defer s.Close()
		spec := svc.JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}
		if _, err := s.Estimate(spec); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			job, err := s.Estimate(spec)
			if err != nil {
				b.Fatal(err)
			}
			cycles = job.Result.Cycles
		}
		b.ReportMetric(float64(cycles)/1e3, "est-kcycles")
	})

	b.Run("cold-simulate", func(b *testing.B) {
		// A fresh machine per iteration, no memo: what every estimate
		// avoids. A 256x256 corner turn keeps iterations short while
		// staying a real simulation.
		w := core.PaperWorkload()
		w.CornerTurn = cornerturn.Spec{Rows: 256, Cols: 256, BlockSize: 32}
		var last core.Result
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := machines.ByName("VIRAM")
			if err != nil {
				b.Fatal(err)
			}
			r, err := core.Run(m, core.CornerTurn, w)
			if err != nil {
				b.Fatal(err)
			}
			last = r
		}
		b.ReportMetric(last.KCycles(), "sim-kcycles")
	})
}
