GO ?= go

.PHONY: all build vet test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI entry point: build, vet, full test suite under the
# race detector.
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
