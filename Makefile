GO ?= go

.PHONY: all build vet test race check chaos soak bench clean

# soak sweeps the durability and chaos suites under the race detector
# across a fixed seed matrix: journal frame/replay tests, svc crash and
# drain recovery, idempotency, and the kill-and-restart end-to-end run,
# all with fault injection armed. Each seed shifts which attempts fault
# without sacrificing reproducibility.
SOAK_SEEDS ?= 1 7 42

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI entry point: build, vet, full test suite under the
# race detector.
check:
	./scripts/check.sh

# chaos re-runs the suite with fault injection armed at a fixed seed:
# transient errors plus latency spikes at every execution attempt and
# occasional machine-factory failures. Everything must still pass —
# retries absorb the faults and the determinism guard keeps the numbers
# honest. (10% keeps a whole job's 5-attempt failure at ~1e-5; the 20%
# acceptance rate is exercised by TestChaosStudyBitIdentical, which
# arms its own registry with a deeper attempt budget.)
chaos:
	SIGKERN_FAULTS='pool.execute:transient:0.1,pool.execute:latency:0.05:2ms,machines.factory:transient:0.05' \
	SIGKERN_FAULTS_SEED=42 $(GO) test -race ./...

soak:
	@set -e; for seed in $(SOAK_SEEDS); do \
		echo "== soak seed $$seed =="; \
		SIGKERN_FAULTS='pool.execute:transient:0.1,pool.execute:latency:0.05:2ms' \
		SIGKERN_FAULTS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Journal|Replay|Durab|Idempot|Frame|TornTail|Chaos|E2E' \
			./internal/journal/... ./internal/svc/... ./cmd/simserved/...; \
	done

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
