GO ?= go

.PHONY: all build vet test race check chaos soak cluster-soak batch-soak overload-soak dse-smoke bench bench-smoke bench-json benchdiff clean

# soak sweeps the durability and chaos suites under the race detector
# across a fixed seed matrix: journal frame/replay tests, svc crash and
# drain recovery, idempotency, and the kill-and-restart end-to-end run,
# all with fault injection armed. Each seed shifts which attempts fault
# without sacrificing reproducibility.
SOAK_SEEDS ?= 1 7 42

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI entry point: build, vet, full test suite under the
# race detector.
check:
	./scripts/check.sh

# chaos re-runs the suite with fault injection armed at a fixed seed:
# transient errors plus latency spikes at every execution attempt and
# occasional machine-factory failures. Everything must still pass —
# retries absorb the faults and the determinism guard keeps the numbers
# honest. (10% keeps a whole job's 5-attempt failure at ~1e-5; the 20%
# acceptance rate is exercised by TestChaosStudyBitIdentical, which
# arms its own registry with a deeper attempt budget.)
chaos:
	SIGKERN_FAULTS='pool.execute:transient:0.1,pool.execute:latency:0.05:2ms,machines.factory:transient:0.05' \
	SIGKERN_FAULTS_SEED=42 $(GO) test -race ./...

soak:
	@set -e; for seed in $(SOAK_SEEDS); do \
		echo "== soak seed $$seed =="; \
		SIGKERN_FAULTS='pool.execute:transient:0.1,pool.execute:latency:0.05:2ms' \
		SIGKERN_FAULTS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Journal|Replay|Durab|Idempot|Frame|TornTail|Chaos|E2E' \
			./internal/journal/... ./internal/svc/... ./cmd/simserved/...; \
	done

# cluster-soak is the cluster acceptance run: three chaos-armed
# journaling shards behind a simgate, one shard SIGKILLed mid-sweep,
# rerouted, WAL-rebalanced, and restarted — under the race detector,
# across the seed matrix. Passing means bit-identical cycle counts at
# every stage (gated by cmd/compare at threshold 0), zero
# determinism-guard trips, and every rerouted job answered exactly
# once.
cluster-soak:
	@set -e; for seed in $(SOAK_SEEDS); do \
		echo "== cluster soak seed $$seed =="; \
		SIGKERN_FAULTS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'ClusterSoak|Gateway' ./cmd/simgate/... ./internal/cluster/...; \
	done

# batch-soak is the grid-fast-path acceptance run: a full machine x
# kernel grid through POST /v1/batch on a real 4-process cluster, one
# shard SIGKILLed while the batch stream is open, restarted on its own
# journal, and the re-driven grid gated by cmd/compare at threshold 0 —
# under the race detector, across the seed matrix. Passing means every
# batch answers every index bit-identically through kill, reroute and
# group-commit replay, with zero determinism-guard trips.
batch-soak:
	@set -e; for seed in $(SOAK_SEEDS); do \
		echo "== batch soak seed $$seed =="; \
		SIGKERN_FAULTS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'BatchSoak|GatewayBatch|Batch' \
			./cmd/simgate/... ./internal/cluster/... ./internal/svc/...; \
	done

# overload-soak is the overload acceptance run: the deadline-budget,
# priority-class, and brownout suites under the race detector, capped by
# a real 4-process flood — three chaos-armed one-worker shards behind a
# simgate, saturated with mixed-priority traffic. Passing means every
# answer is a legal overload status, degraded answers are flagged and
# carry the exact analytic bound, every simulated answer is
# bit-identical to the in-process reference, no expired job burns a
# worker slot, and the cluster returns to full simulation once the
# flood stops. The process tests arm their own fault mix
# (heavy latency injection, so tiny kernels actually saturate a
# one-worker queue); only the seed comes from the matrix.
overload-soak:
	@set -e; for seed in $(SOAK_SEEDS); do \
		echo "== overload soak seed $$seed =="; \
		SIGKERN_FAULTS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Overload|Brownout|Priority|Budget|Expired|Sheds|Deadline' \
			./cmd/simgate/... ./internal/svc/... ./internal/resilience/... ./internal/cluster/...; \
	done

# dse-smoke is the design-space-exploration gate: a small sweep through
# a real simserved process, requiring the exploration's base point to
# match /v1/tables/3 bit for bit and the VIRAM lanes sweep to improve
# monotonically with a non-empty Pareto frontier.
dse-smoke:
	./scripts/dse_smoke.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-smoke runs every benchmark exactly once — a CI gate that the
# benchmark harness itself still builds and executes, not a measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ .

# bench-json regenerates the performance snapshot (BENCH.json) that
# benchdiff compares against the committed baseline.
bench-json:
	./scripts/bench.sh BENCH.json

# benchdiff takes a fresh snapshot and diffs it against the committed
# baseline: simulated cycle counts must be bit-identical (the machine
# models are deterministic), and wall-clock ns/op may not regress beyond
# the tolerance. The tool's default gate is 15%; shared CI runners and
# single-CPU containers jitter ±20% run-to-run even with min-of-N
# sampling, so the make target loosens the wall-clock gate to 30% —
# tighten with BENCH_TOL=0.15 on quiet dedicated hardware. The
# sim-kcycles gate stays exact either way; that is the regression signal
# that cannot be noise.
BENCH_TOL ?= 0.30
benchdiff: bench-json
	$(GO) run scripts/benchdiff.go -tol $(BENCH_TOL) BENCH_PR10.json BENCH.json

clean:
	$(GO) clean ./...
